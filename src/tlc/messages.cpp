#include "tlc/messages.hpp"

#include <stdexcept>

#include "wire/codec.hpp"

namespace tlc::core {
namespace {

constexpr std::uint16_t kMagic = 0x544c;  // "TL"
constexpr std::uint8_t kVersion = 1;

void write_header(wire::Writer& w, MessageType type) {
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(type));
}

MessageType read_header(wire::Reader& r) {
  if (r.u16() != kMagic) throw wire::DecodeError{"bad magic"};
  if (r.u8() != kVersion) throw wire::DecodeError{"unsupported version"};
  const std::uint8_t t = r.u8();
  if (t < 1 || t > 3) throw wire::DecodeError{"unknown message type"};
  return static_cast<MessageType>(t);
}

void write_plan(wire::Writer& w, const PlanEcho& p) {
  w.u64(p.cycle_start_ns);
  w.u64(p.cycle_length_ns);
  w.f64(p.loss_weight);
  w.u64(p.cycle_index);
}

PlanEcho read_plan(wire::Reader& r) {
  PlanEcho p;
  p.cycle_start_ns = r.u64();
  p.cycle_length_ns = r.u64();
  p.loss_weight = r.f64();
  p.cycle_index = r.u64();
  return p;
}

void write_nonce(wire::Writer& w, const Nonce& n) { w.raw(n); }

Nonce read_nonce(wire::Reader& r) {
  const ByteVec raw = r.raw(16);
  Nonce n{};
  std::copy(raw.begin(), raw.end(), n.begin());
  return n;
}

/// Scratch encoder for the sign/verify/encode paths. Each party signs and
/// verifies at every negotiation message, and the transient "signable"
/// image is discarded immediately after the crypto call — a reusable
/// per-thread buffer removes that per-message allocation. Thread-local
/// (not global) so concurrent scenario sweeps never share it. Safe here
/// because signable writers never nest: embedded messages (peer_cdr,
/// peer_cda) are stored pre-encoded.
wire::Writer& scratch_writer() {
  thread_local wire::Writer w;
  w.clear();
  return w;
}

PartyRole read_role(wire::Reader& r) {
  const std::uint8_t v = r.u8();
  if (v > 1) throw wire::DecodeError{"bad role"};
  return static_cast<PartyRole>(v);
}

charging::Direction read_direction(wire::Reader& r) {
  const std::uint8_t v = r.u8();
  if (v > 1) throw wire::DecodeError{"bad direction"};
  return static_cast<charging::Direction>(v);
}

}  // namespace

Nonce make_nonce(Rng& rng) {
  Nonce n{};
  for (std::size_t i = 0; i < n.size(); i += 8) {
    const std::uint64_t word = rng();
    for (std::size_t j = 0; j < 8; ++j) {
      n[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
  }
  return n;
}

PlanEcho PlanEcho::from(const charging::DataPlan& plan,
                        const charging::ChargingCycle& cycle) {
  PlanEcho echo;
  echo.cycle_start_ns =
      static_cast<std::uint64_t>(cycle.start.time_since_epoch().count());
  echo.cycle_length_ns = static_cast<std::uint64_t>(cycle.length.count());
  echo.loss_weight = plan.loss_weight;
  echo.cycle_index = cycle.index;
  return echo;
}

// ---------------------------------------------------------------- CdrMsg

namespace {
void write_cdr_signable(wire::Writer& w, const CdrMsg& m) {
  write_header(w, MessageType::kCdr);
  write_plan(w, m.plan);
  w.u8(static_cast<std::uint8_t>(m.sender));
  w.u8(static_cast<std::uint8_t>(m.direction));
  w.u32(m.seq);
  w.u32(m.round);
  write_nonce(w, m.nonce);
  w.u64(m.claim.count());
}
}  // namespace

ByteVec CdrMsg::encode() const {
  wire::Writer& w = scratch_writer();
  write_cdr_signable(w, *this);
  w.bytes(signature);
  return w.buffer();
}

CdrMsg CdrMsg::decode(std::span<const std::uint8_t> data) {
  wire::Reader r{data};
  if (read_header(r) != MessageType::kCdr) {
    throw wire::DecodeError{"not a CDR"};
  }
  CdrMsg m;
  m.plan = read_plan(r);
  m.sender = read_role(r);
  m.direction = read_direction(r);
  m.seq = r.u32();
  m.round = r.u32();
  m.nonce = read_nonce(r);
  m.claim = Bytes{r.u64()};
  m.signature = r.bytes();
  r.expect_end();
  return m;
}

void CdrMsg::sign(const crypto::KeyPair& key) {
  wire::Writer& w = scratch_writer();
  write_cdr_signable(w, *this);
  signature = crypto::sign(key, w.buffer());
}

bool CdrMsg::verify(const crypto::PublicKey& key) const {
  if (signature.empty()) return false;
  wire::Writer& w = scratch_writer();
  write_cdr_signable(w, *this);
  return crypto::verify(key, w.buffer(), signature);
}

// ---------------------------------------------------------------- CdaMsg

namespace {
void write_cda_signable(wire::Writer& w, const CdaMsg& m) {
  write_header(w, MessageType::kCda);
  write_plan(w, m.plan);
  w.u8(static_cast<std::uint8_t>(m.sender));
  w.u8(static_cast<std::uint8_t>(m.direction));
  w.u32(m.seq);
  w.u32(m.round);
  write_nonce(w, m.nonce);
  w.u64(m.claim.count());
  w.bytes(m.peer_cdr);
}
}  // namespace

ByteVec CdaMsg::encode() const {
  wire::Writer& w = scratch_writer();
  write_cda_signable(w, *this);
  w.bytes(signature);
  return w.buffer();
}

CdaMsg CdaMsg::decode(std::span<const std::uint8_t> data) {
  wire::Reader r{data};
  if (read_header(r) != MessageType::kCda) {
    throw wire::DecodeError{"not a CDA"};
  }
  CdaMsg m;
  m.plan = read_plan(r);
  m.sender = read_role(r);
  m.direction = read_direction(r);
  m.seq = r.u32();
  m.round = r.u32();
  m.nonce = read_nonce(r);
  m.claim = Bytes{r.u64()};
  m.peer_cdr = r.bytes();
  m.signature = r.bytes();
  r.expect_end();
  return m;
}

void CdaMsg::sign(const crypto::KeyPair& key) {
  wire::Writer& w = scratch_writer();
  write_cda_signable(w, *this);
  signature = crypto::sign(key, w.buffer());
}

bool CdaMsg::verify(const crypto::PublicKey& key) const {
  if (signature.empty()) return false;
  wire::Writer& w = scratch_writer();
  write_cda_signable(w, *this);
  return crypto::verify(key, w.buffer(), signature);
}

// ---------------------------------------------------------------- PocMsg

namespace {
void write_poc_signable(wire::Writer& w, const PocMsg& m) {
  write_header(w, MessageType::kPoc);
  write_plan(w, m.plan);
  w.u8(static_cast<std::uint8_t>(m.sender));
  w.u32(m.seq);
  w.u32(m.round);
  w.u64(m.charged.count());
  w.bytes(m.peer_cda);
}
}  // namespace

ByteVec PocMsg::encode() const {
  wire::Writer& w = scratch_writer();
  write_poc_signable(w, *this);
  w.bytes(signature);
  write_nonce(w, nonce_edge);
  write_nonce(w, nonce_operator);
  return w.buffer();
}

PocMsg PocMsg::decode(std::span<const std::uint8_t> data) {
  wire::Reader r{data};
  if (read_header(r) != MessageType::kPoc) {
    throw wire::DecodeError{"not a PoC"};
  }
  PocMsg m;
  m.plan = read_plan(r);
  m.sender = read_role(r);
  m.seq = r.u32();
  m.round = r.u32();
  m.charged = Bytes{r.u64()};
  m.peer_cda = r.bytes();
  m.signature = r.bytes();
  m.nonce_edge = read_nonce(r);
  m.nonce_operator = read_nonce(r);
  r.expect_end();
  return m;
}

void PocMsg::sign(const crypto::KeyPair& key) {
  wire::Writer& w = scratch_writer();
  write_poc_signable(w, *this);
  signature = crypto::sign(key, w.buffer());
}

bool PocMsg::verify(const crypto::PublicKey& key) const {
  if (signature.empty()) return false;
  wire::Writer& w = scratch_writer();
  write_poc_signable(w, *this);
  return crypto::verify(key, w.buffer(), signature);
}

// ---------------------------------------------------------------- variant

ByteVec encode_message(const Message& msg) {
  return std::visit([](const auto& m) { return m.encode(); }, msg);
}

Message decode_message(std::span<const std::uint8_t> data) {
  wire::Reader peek{data};
  const MessageType type = read_header(peek);
  switch (type) {
    case MessageType::kCdr:
      return CdrMsg::decode(data);
    case MessageType::kCda:
      return CdaMsg::decode(data);
    case MessageType::kPoc:
      return PocMsg::decode(data);
  }
  throw wire::DecodeError{"unreachable message type"};
}

MessageType message_type(const Message& msg) {
  return std::visit(
      [](const auto& m) -> MessageType {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, CdrMsg>) return MessageType::kCdr;
        if constexpr (std::is_same_v<T, CdaMsg>) return MessageType::kCda;
        return MessageType::kPoc;
      },
      msg);
}

}  // namespace tlc::core
