#include "charging/usage.hpp"

#include <gtest/gtest.h>

namespace tlc::charging {
namespace {

TEST(ChargedVolume, CEqualsZeroChargesReceivedOnly) {
  EXPECT_EQ(charged_volume(Bytes{1000}, Bytes{800}, 0.0), Bytes{800});
}

TEST(ChargedVolume, CEqualsOneChargesAllSent) {
  EXPECT_EQ(charged_volume(Bytes{1000}, Bytes{800}, 1.0), Bytes{1000});
}

TEST(ChargedVolume, MidpointAtHalf) {
  EXPECT_EQ(charged_volume(Bytes{1000}, Bytes{800}, 0.5), Bytes{900});
}

TEST(ChargedVolume, SymmetricInArguments) {
  // Line 8 of Algorithm 1 handles either ordering of the claims.
  EXPECT_EQ(charged_volume(Bytes{800}, Bytes{1000}, 0.25),
            charged_volume(Bytes{1000}, Bytes{800}, 0.25));
}

TEST(ChargedVolume, EqualClaimsAreFixedPoint) {
  for (double c : {0.0, 0.3, 1.0}) {
    EXPECT_EQ(charged_volume(Bytes{500}, Bytes{500}, c), Bytes{500});
  }
}

TEST(ChargedVolume, ZeroVolumes) {
  EXPECT_EQ(charged_volume(Bytes{0}, Bytes{0}, 0.5), Bytes{0});
}

TEST(ChargedVolume, RejectsInvalidWeight) {
  EXPECT_THROW((void)charged_volume(Bytes{1}, Bytes{1}, -0.1),
               std::invalid_argument);
  EXPECT_THROW((void)charged_volume(Bytes{1}, Bytes{1}, 1.1),
               std::invalid_argument);
}

class ChargedVolumeSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t,
                                                 std::uint64_t>> {};

TEST_P(ChargedVolumeSweep, AlwaysBetweenClaims) {
  const auto [c, a, b] = GetParam();
  const Bytes x = charged_volume(Bytes{a}, Bytes{b}, c);
  EXPECT_GE(x, std::min(Bytes{a}, Bytes{b}));
  EXPECT_LE(x, std::max(Bytes{a}, Bytes{b}));
}

TEST_P(ChargedVolumeSweep, MonotoneInBothClaims) {
  const auto [c, a, b] = GetParam();
  const Bytes x = charged_volume(Bytes{a}, Bytes{b}, c);
  const Bytes x_more = charged_volume(Bytes{a + 1'000'000}, Bytes{b}, c);
  EXPECT_GE(x_more, x);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChargedVolumeSweep,
    ::testing::Combine(::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0),
                       ::testing::Values(0ull, 1'000ull, 777'000'000ull),
                       ::testing::Values(0ull, 900ull, 800'000'000ull)));

TEST(CorrectCharge, UsesGroundTruth) {
  GroundTruth t{Bytes{1000}, Bytes{600}};
  EXPECT_EQ(correct_charge(t, 0.5), Bytes{800});
  EXPECT_EQ(t.lost(), Bytes{400});
  EXPECT_DOUBLE_EQ(t.loss_fraction(), 0.4);
}

TEST(CorrectCharge, NoTrafficHasZeroLossFraction) {
  GroundTruth t{};
  EXPECT_DOUBLE_EQ(t.loss_fraction(), 0.0);
}

TEST(GapMetrics, AbsoluteAndRatio) {
  const GapMetrics m = gap_metrics(Bytes{900}, Bytes{1000});
  EXPECT_DOUBLE_EQ(m.absolute_bytes, 100.0);
  EXPECT_DOUBLE_EQ(m.ratio, 0.1);
}

TEST(GapMetrics, OverChargeAlsoPositive) {
  const GapMetrics m = gap_metrics(Bytes{1100}, Bytes{1000});
  EXPECT_DOUBLE_EQ(m.absolute_bytes, 100.0);
}

TEST(GapMetrics, ZeroCorrectGivesZeroRatio) {
  const GapMetrics m = gap_metrics(Bytes{500}, Bytes{0});
  EXPECT_DOUBLE_EQ(m.ratio, 0.0);
  EXPECT_DOUBLE_EQ(m.absolute_bytes, 500.0);
}

TEST(UsageRecord, TotalsAndDirection) {
  UsageRecord r{Bytes{10}, Bytes{20}};
  EXPECT_EQ(r.total(), Bytes{30});
  EXPECT_EQ(r.in(Direction::kUplink), Bytes{10});
  EXPECT_EQ(r.in(Direction::kDownlink), Bytes{20});
}

TEST(UsageRecord, Addition) {
  UsageRecord a{Bytes{1}, Bytes{2}};
  const UsageRecord b{Bytes{10}, Bytes{20}};
  a += b;
  EXPECT_EQ(a, (UsageRecord{Bytes{11}, Bytes{22}}));
  EXPECT_EQ(a + b, (UsageRecord{Bytes{21}, Bytes{42}}));
}

TEST(DataPlan, ValidateRejectsBadWeight) {
  DataPlan plan;
  plan.loss_weight = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.loss_weight = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(DataPlan, ValidateRejectsZeroCycle) {
  DataPlan plan;
  plan.cycle_length = Duration::zero();
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(DataPlan, CycleAtBucketsCorrectly) {
  DataPlan plan;
  plan.cycle_length = std::chrono::hours{1};
  EXPECT_EQ(plan.cycle_at(kTimeZero).index, 0u);
  EXPECT_EQ(plan.cycle_at(kTimeZero + std::chrono::minutes{59}).index, 0u);
  EXPECT_EQ(plan.cycle_at(kTimeZero + std::chrono::minutes{60}).index, 1u);
  EXPECT_EQ(plan.cycle_at(kTimeZero + std::chrono::hours{25}).index, 25u);
}

TEST(DataPlan, CycleAtClampsNegativeLocalTimes) {
  DataPlan plan;
  const TimePoint before_epoch{-std::chrono::seconds{30}};
  EXPECT_EQ(plan.cycle_at(before_epoch).index, 0u);
}

TEST(DataPlan, CycleBoundaries) {
  DataPlan plan;
  plan.cycle_length = std::chrono::seconds{300};
  const ChargingCycle c = plan.cycle_at(kTimeZero + std::chrono::seconds{750});
  EXPECT_EQ(c.index, 2u);
  EXPECT_EQ(c.start, kTimeZero + std::chrono::seconds{600});
  EXPECT_EQ(c.end(), kTimeZero + std::chrono::seconds{900});
}

TEST(Direction, ToString) {
  EXPECT_STREQ(to_string(Direction::kUplink), "uplink");
  EXPECT_STREQ(to_string(Direction::kDownlink), "downlink");
}

}  // namespace
}  // namespace tlc::charging
