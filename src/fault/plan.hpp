// Deterministic fault plans (DESIGN.md §8).
//
// A FaultPlan is a declarative schedule of faults injected into one
// scenario run: what breaks, where in the stack, when (sim-time), and how
// hard. Plans are plain data — generating one draws every parameter from
// an explicitly seeded Rng, so plan `i` of master seed `s` is the same
// bytes on every machine, and the chaos driver can fan plans across the
// sweep pool while staying byte-identical to a serial run.
//
// Fault magnitudes are bounded by construction (see make_random_plan) so
// that the protocol invariants the paper proves still hold under injection:
// view skew stays under the cross-check tolerance, which keeps T4's
// one-round convergence intact; anything larger would make a *correct*
// negotiation legitimately take extra rounds and the invariant checker
// would cry wolf.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/units.hpp"

namespace tlc::fault {

/// Window of elevated loss on a link's delivery path (post-charging on the
/// downlink, post-radio on both): models SLA middlebox brown-outs and
/// transport-network incidents.
struct BurstDrop {
  double start_s = 0.0;
  double duration_s = 0.0;
  double probability = 1.0;  // per-packet drop chance inside the window
};

/// Duplicate the next `max_packets` delivered packets `copies` times each
/// (PDCP retransmission glitch). Bounded small: duplicated volume must stay
/// far below the cross-check tolerance or honest parties would legitimately
/// disagree by more than the slack.
struct Duplication {
  double start_s = 0.0;
  std::uint32_t max_packets = 0;
  std::uint32_t copies = 1;
};

/// Window of random bounded extra delivery delay — packets overtake each
/// other (reordering) but never jump a cycle boundary by more than
/// `max_delay_ms`.
struct Reorder {
  double start_s = 0.0;
  double duration_s = 0.0;
  double probability = 0.0;
  double max_delay_ms = 0.0;
};

/// The gateway's charging counters freeze (OFCS/CDF outage): traffic keeps
/// flowing but is not recorded. Frozen volume is tracked separately in
/// epc.gw.fault.stalled_{ul,dl}_bytes so the charging-gap identity can be
/// stated exactly.
struct GatewayStall {
  double start_s = 0.0;
  double duration_s = 0.0;
};

/// The next `count` operator-triggered RRC COUNTER CHECKs time out; the
/// OFCS re-polls `retry_after_s` later. Bounded so midpoint attribution
/// keeps the delta in the right cycle.
struct CounterCheckTimeout {
  std::uint32_t count = 0;
  double retry_after_s = 2.0;
};

/// An unscheduled handover forced mid-flow (kills the serving cell's
/// buffered downlink). Only meaningful when the plan enables mobility.
struct HandoverKill {
  double at_s = 0.0;
};

/// Claim behaviour for the adversarial negotiation probe.
enum class ClaimStyle : std::uint8_t {
  kOptimal = 0,      // rational minimax/maximin (the baseline)
  kGreedy = 1,       // scales the truthful claim by a factor
  kOscillating = 2,  // ping-pongs between the window extremes
};

[[nodiscard]] const char* to_string(ClaimStyle s);

/// One adversarial value-level negotiation run against the cycle's real
/// views. The invariant asserted is one-sided: the *rational* party's bound
/// must hold whenever the exchange converges; a party claiming against its
/// own interest forfeits its own protection (Theorem 2 protects parties
/// that follow the protocol).
struct AdversarialExchange {
  ClaimStyle edge = ClaimStyle::kOptimal;
  double edge_factor = 1.0;  // greedy scale; <1 under-claims
  ClaimStyle op = ClaimStyle::kOptimal;
  double op_factor = 1.0;  // greedy scale; >1 over-claims
};

/// The full schedule for one chaos run: scenario shape + injected faults.
struct FaultPlan {
  std::uint64_t id = 0;
  std::uint64_t seed = 1;  // drives the scenario AND the injectors

  // Scenario shape (maps onto exp::ScenarioConfig).
  int app_index = 1;  // exp::AppKind underlying value
  double background_mbps = 0.0;
  double handover_period_s = 0.0;  // 0 = static device
  int cycles = 2;
  double cycle_length_s = 240.0;

  // Injected faults; absent optionals inject nothing at that layer.
  std::optional<BurstDrop> dl_burst_drop;
  std::optional<BurstDrop> ul_burst_drop;
  std::optional<Duplication> dl_duplication;
  std::optional<Reorder> dl_reorder;
  std::optional<GatewayStall> gateway_stall;
  std::optional<CounterCheckTimeout> counter_check_timeout;
  std::optional<HandoverKill> handover_kill;

  AdversarialExchange exchange;

  /// Whether the wire-attack probes (replay, truncation, corruption) run
  /// for this plan. They always must be rejected; the flag only trades
  /// coverage for runtime.
  bool wire_attacks = true;

  /// Run the wire-level settlement after the measured window and, when
  /// poc_batch_size > 0, the batched hash-chained receipt audit over its
  /// PoCs. The batch-audit invariant then asserts that every head and
  /// every receipt of an honest run verifies and that the audited volume
  /// matches the settlements exactly.
  bool wire_settlement = false;
  std::uint32_t poc_batch_size = 0;  // 0 = per-message verification

  /// Single-line canonical JSON (stable key order) — used in reports and
  /// in the determinism fingerprint.
  [[nodiscard]] std::string describe() const;
};

/// Draws a bounded random plan: plan `id` under `master_seed` is fully
/// deterministic and independent of every other id (splitmix64-mixed).
[[nodiscard]] FaultPlan make_random_plan(std::uint64_t id,
                                         std::uint64_t master_seed);

}  // namespace tlc::fault
