#include "wire/frame.hpp"

#include "wire/codec.hpp"

#include "common/hot.hpp"

namespace tlc::wire {

TLC_HOT ByteVec encode_frame(const FrameHeader& header,
                     std::span<const std::uint8_t> payload) {
  Writer w;
  w.reserve(kFrameOverhead + payload.size());
  w.u32(kFrameMagic);
  w.u8(kFrameVersion);
  w.u8(header.attempt);
  w.u64(header.trace_id);
  w.u64(header.span_id);
  w.bytes(payload);
  return w.take();
}

TLC_HOT Frame decode_frame(std::span<const std::uint8_t> data) {
  Reader r{data};
  if (r.u32() != kFrameMagic) {
    // tlc-lint: allow(hot-path-alloc): reject path for tampered frames
    throw DecodeError{"frame: bad magic"};
  }
  if (r.u8() != kFrameVersion) {
    // tlc-lint: allow(hot-path-alloc): reject path for tampered frames
    throw DecodeError{"frame: unknown version"};
  }
  Frame f;
  f.header.attempt = r.u8();
  f.header.trace_id = r.u64();
  f.header.span_id = r.u64();
  f.payload = r.bytes();
  r.expect_end();
  return f;
}

}  // namespace tlc::wire
