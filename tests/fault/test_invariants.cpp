// The invariant checker is the harness's oracle, so it gets its own
// falsification tests: seeded violations of T2, T4, and the charging-gap
// identity must each be detected. If replay protection or T2 bounding ever
// regressed, these are the checks that would light up in the chaos run.
#include "fault/invariants.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "exp/wire_exchange.hpp"
#include "fault/injector.hpp"
#include "obs/span.hpp"
#include "tlc/negotiation.hpp"
#include "tlc/strategy.hpp"

namespace tlc::fault {
namespace {

constexpr core::LocalView kEdgeView{Bytes{1'000'000}, Bytes{920'000}};
constexpr core::LocalView kOpView{Bytes{990'000}, Bytes{915'000}};

/// A cycle outcome that satisfies every invariant, used as the mutation
/// baseline.
exp::CycleOutcome clean_cycle() {
  exp::CycleOutcome c;
  c.cycle = 1;
  c.edge_view = kEdgeView;
  c.op_view = kOpView;
  c.optimal.converged = true;
  c.optimal.rounds = 1;
  c.optimal.charged = Bytes{950'000};
  c.optimal.edge_claim = Bytes{915'000};
  c.optimal.operator_claim = Bytes{990'000};
  c.random.converged = true;
  c.random.rounds = 2;
  return c;
}

/// Metrics where both gap identities hold exactly.
obs::MetricsSnapshot balanced_metrics() {
  obs::MetricsSnapshot m;
  m.counters["epc.gw.charged_dl_bytes"] = 1'000'000;
  m.counters["epc.gw.fault.stalled_dl_bytes"] = 10'000;
  m.counters["net.dl.delivered_bytes"] = 930'000;
  m.counters["net.dl.drop.radio-loss_bytes"] = 50'000;
  m.counters["net.dl.drop.fault-injected_bytes"] = 30'000;
  m.counters["epc.gw.charged_ul_bytes"] = 500'000;
  m.counters["net.ul.delivered_bytes"] = 500'000;
  return m;
}

exp::ScenarioResult make_result(exp::CycleOutcome cycle,
                                obs::MetricsSnapshot metrics) {
  exp::ScenarioResult r;
  r.cycles.push_back(std::move(cycle));
  r.metrics = std::move(metrics);
  return r;
}

std::vector<Violation> check(const FaultPlan& plan,
                             const exp::ScenarioResult& result) {
  std::vector<Violation> out;
  check_scenario_invariants(plan, result, out);
  return out;
}

bool has_invariant(const std::vector<Violation>& v, std::string_view name) {
  return std::any_of(v.begin(), v.end(), [&](const Violation& x) {
    return x.invariant == name;
  });
}

TEST(Invariants, CleanOutcomePasses) {
  const auto violations =
      check(FaultPlan{}, make_result(clean_cycle(), balanced_metrics()));
  for (const Violation& v : violations) ADD_FAILURE() << v.to_json();
}

TEST(Invariants, DetectsChargeAboveEdgeBound) {
  exp::CycleOutcome c = clean_cycle();
  // 1 MB sent + 3% slack = 1.03 MB; charge clearly beyond it. Widen the
  // claim window so only the T2 bound trips.
  c.optimal.charged = Bytes{1'200'000};
  c.optimal.operator_claim = Bytes{1'300'000};
  const auto violations =
      check(FaultPlan{}, make_result(c, balanced_metrics()));
  EXPECT_TRUE(has_invariant(violations, "t2-bound"));
}

TEST(Invariants, DetectsChargeBelowOperatorBound) {
  exp::CycleOutcome c = clean_cycle();
  c.optimal.charged = Bytes{500'000};  // far under received − slack
  c.optimal.edge_claim = Bytes{400'000};
  const auto violations =
      check(FaultPlan{}, make_result(c, balanced_metrics()));
  EXPECT_TRUE(has_invariant(violations, "t2-bound"));
}

TEST(Invariants, DetectsExtraNegotiationRounds) {
  exp::CycleOutcome c = clean_cycle();
  c.optimal.rounds = 2;
  const auto violations =
      check(FaultPlan{}, make_result(c, balanced_metrics()));
  EXPECT_TRUE(has_invariant(violations, "t4-rounds"));
}

TEST(Invariants, DetectsChargeOutsideFinalClaims) {
  exp::CycleOutcome c = clean_cycle();
  c.optimal.charged = Bytes{1'000'000};
  c.optimal.edge_claim = Bytes{915'000};
  c.optimal.operator_claim = Bytes{960'000};
  const auto violations =
      check(FaultPlan{}, make_result(c, balanced_metrics()));
  EXPECT_TRUE(has_invariant(violations, "t2-claim-window"));
}

TEST(Invariants, DetectsUnattributedDownlinkLoss) {
  obs::MetricsSnapshot m = balanced_metrics();
  // 20 KB charged but neither delivered, stalled, nor attributed to a
  // drop cause — the identity must flag the residual.
  m.counters["epc.gw.charged_dl_bytes"] += 20'000;
  const auto violations =
      check(FaultPlan{}, make_result(clean_cycle(), m));
  EXPECT_TRUE(has_invariant(violations, "gap-identity-dl"));
}

TEST(Invariants, DetectsUplinkDeliveryChargingMismatch) {
  obs::MetricsSnapshot m = balanced_metrics();
  m.counters["net.ul.delivered_bytes"] += 1;
  const auto violations =
      check(FaultPlan{}, make_result(clean_cycle(), m));
  EXPECT_TRUE(has_invariant(violations, "gap-identity-ul"));
}

TEST(Invariants, ViolationBlamesTheOffendingExchangeTraceId) {
  // A per-cycle violation must carry the derived causal trace id of that
  // cycle's exchange — the same id that tags its settlement spans in a
  // JSONL trace of the run, and recomputable without any trace at all.
  exp::CycleOutcome c = clean_cycle();
  c.optimal.rounds = 2;
  const exp::ScenarioResult result = make_result(c, balanced_metrics());
  const auto violations = check(FaultPlan{}, result);
  ASSERT_TRUE(has_invariant(violations, "t4-rounds"));
  const std::string expected = obs::span_hex(exp::exchange_trace_id(
      result.config.seed, exp::WireSettlementConfig{}.device, 1,
      charging::Direction::kUplink));
  for (const Violation& v : violations) {
    if (v.invariant != "t4-rounds") continue;
    EXPECT_EQ(v.trace, expected);
    EXPECT_NE(v.to_json().find("\"trace\":\"" + expected + "\""),
              std::string::npos);
  }
}

TEST(Invariants, WholeRunViolationsCarryNoExchangeTrace) {
  // The gap identities aggregate the whole run; no single exchange owns
  // them, so the blame field stays empty (and out of the JSON).
  obs::MetricsSnapshot m = balanced_metrics();
  m.counters["epc.gw.charged_dl_bytes"] += 20'000;
  const auto violations = check(FaultPlan{}, make_result(clean_cycle(), m));
  ASSERT_TRUE(has_invariant(violations, "gap-identity-dl"));
  for (const Violation& v : violations) {
    if (v.invariant != "gap-identity-dl") continue;
    EXPECT_TRUE(v.trace.empty());
    EXPECT_EQ(v.to_json().find("\"trace\""), std::string::npos);
  }
}

TEST(Invariants, RejectedAttackOutcomesAreClean) {
  std::vector<Violation> out;
  check_attack_outcomes(
      FaultPlan{},
      {AttackOutcome{"replay-cdr", true, "replayed-sequence"},
       AttackOutcome{"replay-poc", true, "ok+replayed"}},
      out);
  EXPECT_TRUE(out.empty());
}

TEST(Invariants, AcceptedAttackIsAViolation) {
  std::vector<Violation> out;
  check_attack_outcomes(
      FaultPlan{}, {AttackOutcome{"replay-cdr", false, "accepted"}}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].invariant, "wire-attack-accepted");
  EXPECT_NE(out[0].to_json().find("replay-cdr"), std::string::npos);
}

TEST(Invariants, GreedyOperatorNeverBeatsRationalEdgeBound) {
  // Theorem 2's one-sided protection, probed directly: however hard the
  // operator over-claims, a converged exchange cannot charge the rational
  // edge more than its sent volume plus slack.
  const core::CrossCheckTolerance tol;
  const Bytes slack = tol.slack_for(kEdgeView.sent_estimate);
  const auto edge = core::make_optimal_edge();
  for (const double factor : {1.0, 1.05, 1.1, 1.25, 1.5}) {
    const auto op =
        core::make_greedy(core::PartyRole::kCellularOperator, factor);
    Rng rng{17};
    const core::NegotiationOutcome outcome = core::negotiate(
        *edge, kEdgeView, *op, kOpView, core::NegotiationConfig{}, rng);
    if (outcome.converged) {
      EXPECT_LE(outcome.charged.count(),
                (kEdgeView.sent_estimate + slack).count())
          << "factor " << factor;
    }
  }
}

TEST(Invariants, OscillatingPeerTerminatesWithinRoundBudget) {
  const auto edge = core::make_optimal_edge();
  const auto op =
      core::make_oscillating(core::PartyRole::kCellularOperator);
  Rng rng{19};
  const core::NegotiationConfig cfg{0.5, 64};
  const core::NegotiationOutcome outcome =
      core::negotiate(*edge, kEdgeView, *op, kOpView, cfg, rng);
  EXPECT_LE(outcome.rounds, cfg.max_rounds);
}

}  // namespace
}  // namespace tlc::fault
