#!/usr/bin/env sh
# CI-style check: the TLC_TRACE=OFF build (trace + span macros compiled to
# no-ops) must stay warning-clean with the full warning set promoted to
# errors. The no-op macros still "use" every argument inside an
# `if (false)` block, so a field expression that only exists for tracing
# cannot regress into an unused-variable warning when tracing is compiled
# out.
#
# Benchmarks are excluded: bench/ carries pre-existing sign-conversion
# warnings unrelated to tracing.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-trace-off}"

cmake -S "$repo_root" -B "$build_dir" \
  -DTLC_TRACE=OFF \
  -DTLC_WARNINGS_AS_ERRORS=ON \
  -DTLC_BUILD_BENCH=OFF \
  >/dev/null

cmake --build "$build_dir" -j "$(nproc)"

# Behavioural half of the check: in the OFF build the packet-path span
# instrumentation (net.* queue/transit spans, epc.* process events) must
# vanish from a streamed trace entirely — only the cold-path settlement
# spans (direct Tracer calls after the measured window) may remain.
trace_file="$(mktemp)"
trap 'rm -f "$trace_file"' EXIT INT TERM
"$build_dir/tools/tlc_lab" --app=udp --cycles=1 --cycle-secs=30 --wire \
  --trace="$trace_file" >/dev/null
if grep -q '"component":"net\.' "$trace_file"; then
  echo "FAIL: TLC_TRACE=OFF build still emits net.* trace events" >&2
  exit 1
fi
if grep -q '"component":"epc\.' "$trace_file"; then
  echo "FAIL: TLC_TRACE=OFF build still emits epc.* trace events" >&2
  exit 1
fi

echo "OK: TLC_TRACE=OFF build is warning-clean (-Werror) and emits no"
echo "    packet-path trace events."
