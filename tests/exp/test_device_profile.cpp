#include "exp/device_profile.hpp"

#include <gtest/gtest.h>

namespace tlc::exp {
namespace {

TEST(DeviceProfile, FourDevicesFromThePaper) {
  const auto& profiles = device_profiles();
  ASSERT_EQ(profiles.size(), 4u);
  EXPECT_EQ(profiles[0].name, "Z840");
  EXPECT_EQ(profiles[1].name, "EL20");
  EXPECT_EQ(profiles[2].name, "S7 Edge");
  EXPECT_EQ(profiles[3].name, "Pixel 2XL");
}

TEST(DeviceProfile, Z840IsTheBaseline) {
  EXPECT_DOUBLE_EQ(z840_profile().crypto_slowdown, 1.0);
}

TEST(DeviceProfile, SlowdownsMatchPaperVerificationRatios) {
  // Fig. 17 verification means: 15.7 / 23.2 / 58.3 / 75.6 ms — the
  // slowdowns must reproduce those ratios to ~10%.
  const auto& profiles = device_profiles();
  const double base = to_seconds(profiles[0].paper_verification);
  for (const auto& dev : profiles) {
    const double expected =
        to_seconds(dev.paper_verification) / base;
    EXPECT_NEAR(dev.crypto_slowdown, expected, expected * 0.1) << dev.name;
  }
}

TEST(DeviceProfile, SlowdownsAreMonotone) {
  const auto& profiles = device_profiles();
  for (std::size_t i = 1; i < profiles.size(); ++i) {
    EXPECT_GT(profiles[i].crypto_slowdown,
              profiles[i - 1].crypto_slowdown);
  }
}

TEST(DeviceProfile, PhoneLatenciesExceedWorkstation) {
  const auto& profiles = device_profiles();
  for (std::size_t i = 1; i < profiles.size(); ++i) {
    EXPECT_GT(profiles[i].link_latency, profiles[0].link_latency);
  }
}

}  // namespace
}  // namespace tlc::exp
