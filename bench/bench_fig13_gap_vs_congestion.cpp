// Figure 13 — "Charging gap under congestion".
//
// Relative gap ratio ε vs background traffic for each application × scheme.
// Expected shape: legacy's ε climbs with congestion (except gaming, whose
// QCI 7 bearer is immune — panel d), TLC-optimal stays flat near the
// record-error floor, TLC-random in between.
#include <cstdio>

#include "common/format.hpp"

#include "exp/metrics.hpp"
#include "exp/sweep.hpp"

using namespace tlc;
using namespace tlc::exp;

int main(int argc, char** argv) {
  const SweepOptions sweep = sweep_options_from_cli(argc, argv);
  constexpr AppKind kApps[] = {AppKind::kWebcamRtsp, AppKind::kWebcamUdp,
                               AppKind::kVridge, AppKind::kGaming};
  constexpr char kPanel[] = {'a', 'b', 'c', 'd'};
  constexpr double kBackgrounds[] = {0, 100, 120, 140, 160};
  constexpr std::uint64_t kSeeds[] = {1, 2, 3};

  // One flat fan-out over app × bg × seed, aggregated per (app, bg) below.
  std::vector<ScenarioConfig> configs;
  for (AppKind app : kApps) {
    for (double bg : kBackgrounds) {
      for (std::uint64_t seed : kSeeds) {
        ScenarioConfig cfg;
        cfg.app = app;
        cfg.background_mbps = bg;
        cfg.cycles = 3;
        cfg.cycle_length = std::chrono::seconds{300};
        cfg.seed = seed;
        configs.push_back(cfg);
      }
    }
  }
  const std::vector<ScenarioResult> results = run_scenarios(configs, sweep);

  std::size_t slot = 0;
  for (std::size_t i = 0; i < std::size(kApps); ++i) {
    std::printf("## Figure 13%c: %s — gap ratio vs congestion\n\n", kPanel[i],
                std::string(to_string(kApps[i])).c_str());
    Table table{{"bg (Mbps)", "Legacy 4G/5G", "TLC-random", "TLC-optimal"}};
    for (double bg : kBackgrounds) {
      double legacy = 0;
      double random = 0;
      double optimal = 0;
      int n = 0;
      for (std::size_t s = 0; s < std::size(kSeeds); ++s) {
        const ScenarioResult& result = results[slot++];
        for (const auto& c : result.cycles) {
          legacy += c.legacy_gap().ratio;
          random += c.random_gap().ratio;
          optimal += c.optimal_gap().ratio;
          ++n;
        }
      }
      table.add_row({fmt(bg, 0),
                     format_percent(legacy / n),
                     format_percent(random / n),
                     format_percent(optimal / n)});
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
