// The chaos driver's contract: deterministic for a fixed seed (regardless
// of worker count), zero violations on a healthy tree, and full attack
// coverage in every plan that enables wire attacks.
#include "fault/chaos.hpp"

#include <gtest/gtest.h>

namespace tlc::fault {
namespace {

ChaosOptions small(int jobs) {
  ChaosOptions o;
  o.plans = 6;
  o.jobs = jobs;
  o.seed = 404;
  return o;
}

TEST(Chaos, HealthyTreeReportsZeroViolations) {
  const ChaosReport report = run_chaos(small(2));
  ASSERT_EQ(report.outcomes.size(), 6u);
  for (const Violation& v : report.violations) ADD_FAILURE() << v.to_json();
}

TEST(Chaos, ReportIsDeterministicAcrossRunsAndJobCounts) {
  const ChaosReport serial = run_chaos(small(1));
  const ChaosReport parallel = run_chaos(small(3));
  EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
  EXPECT_EQ(serial.to_json(), parallel.to_json());

  const ChaosReport again = run_chaos(small(1));
  EXPECT_EQ(serial.fingerprint(), again.fingerprint());
}

TEST(Chaos, EveryPlanRunsTheFullAttackSuite) {
  const ChaosReport report = run_chaos(small(2));
  for (const PlanOutcome& o : report.outcomes) {
    EXPECT_EQ(o.attacks.size(), 6u) << "plan " << o.plan.id;
    for (const AttackOutcome& a : o.attacks) {
      EXPECT_TRUE(a.rejected)
          << "plan " << o.plan.id << " attack " << a.attack << ": "
          << a.detail;
    }
    EXPECT_EQ(o.result_digest.size(), 64u);  // hex SHA-256
  }
}

TEST(Chaos, DisablingAttacksChangesOnlyCoverage) {
  ChaosOptions o = small(1);
  o.wire_attacks = false;
  const ChaosReport report = run_chaos(o);
  ASSERT_EQ(report.outcomes.size(), 6u);
  for (const PlanOutcome& out : report.outcomes) {
    EXPECT_TRUE(out.attacks.empty());
  }
  EXPECT_TRUE(report.violations.empty());
}

TEST(Chaos, DifferentSeedsProduceDifferentFleets) {
  ChaosOptions a = small(1);
  ChaosOptions b = small(1);
  b.seed = 405;
  EXPECT_NE(run_chaos(a).fingerprint(), run_chaos(b).fingerprint());
}

}  // namespace
}  // namespace tlc::fault
