// Table 2 — "Average charging gap (c = 0.5)".
//
// Per application and scheme: average bitrate, average absolute gap
// ∆ = |x − x̂| in MB/hr, and relative gap ratio ε = ∆/x̂, averaged over the
// full condition grid (as the paper's Table 2 aggregates its dataset).
//
// Paper values (∆ MB/hr, ε):
//   WebCam RTSP : legacy 16.56 / 17.0%, optimal 3.27 / 2.2%, random 6.02 / 5.1%
//   WebCam UDP  : legacy 54.68 /  8.1%, optimal 15.59 / 2.0%, random 23.72 / 3.3%
//   VRidge      : legacy 384.49 / 21.9%, optimal 48.07 / 1.8%, random 93.3 / 4.5%
//   Gaming QCI7 : legacy 0.34 / 3.2%, optimal 0.18 / 1.6%, random 0.21 / 1.9%
#include <cstdio>

#include "common/format.hpp"

#include "dataset.hpp"
#include "exp/metrics.hpp"

using namespace tlc;
using namespace tlc::exp;

int main(int argc, char** argv) {
  const SweepOptions sweep = sweep_options_from_cli(argc, argv);
  std::printf("## Table 2: average charging gap (c = 0.5)\n\n");

  constexpr AppKind kApps[] = {AppKind::kWebcamRtsp, AppKind::kWebcamUdp,
                               AppKind::kVridge, AppKind::kGaming};
  constexpr double kPaperLegacy[] = {16.56, 54.68, 384.49, 0.34};
  constexpr double kPaperOptimal[] = {3.27, 15.59, 48.07, 0.18};
  constexpr double kPaperRandom[] = {6.02, 23.72, 93.3, 0.21};

  Table table{{"scenario", "rate (Mbps)", "legacy D", "eps", "optimal D",
               "eps", "random D", "eps", "paper D (leg/opt/rnd)"}};
  double total_reduction_optimal = 0;
  for (std::size_t i = 0; i < std::size(kApps); ++i) {
    const auto results = run_grid(kApps[i], {}, sweep);
    const GapSamples legacy = collect_gaps(results, Scheme::kLegacy);
    const GapSamples optimal = collect_gaps(results, Scheme::kTlcOptimal);
    const GapSamples random = collect_gaps(results, Scheme::kTlcRandom);
    table.add_row({std::string(to_string(kApps[i])),
                   fmt(results.front().measured_app_mbps, 2),
                   fmt(legacy.mb_per_hr.mean(), 2),
                   format_percent(legacy.ratio.mean()),
                   fmt(optimal.mb_per_hr.mean(), 2),
                   format_percent(optimal.ratio.mean()),
                   fmt(random.mb_per_hr.mean(), 2),
                   format_percent(random.ratio.mean()),
                   fmt(kPaperLegacy[i], 2) + " / " +
                       fmt(kPaperOptimal[i], 2) + " / " +
                       fmt(kPaperRandom[i], 2)});
    total_reduction_optimal +=
        1.0 - optimal.mb_per_hr.mean() / legacy.mb_per_hr.mean();
  }
  table.print();
  std::printf("\nmean TLC-optimal gap reduction across scenarios: %.1f%% "
              "(paper: 47%%-88%% per scenario)\n",
              total_reduction_optimal / std::size(kApps) * 100.0);
  return 0;
}
