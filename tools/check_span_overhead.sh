#!/usr/bin/env sh
# Perf-smoke check: span/trace instrumentation must be (nearly) free on the
# scheduler hot path. Builds bench_scheduler with TLC_TRACE=ON and OFF,
# runs each, and asserts the ON build keeps at least 95% of the OFF
# build's mixed schedule/cancel throughput (best of 3 runs per side, to
# damp CI timing noise).
#
# Usage: check_span_overhead.sh [on_build_dir] [off_build_dir]
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
on_dir="${1:-$repo_root/build-span-on}"
off_dir="${2:-$repo_root/build-span-off}"
events="${TLC_SPAN_BENCH_EVENTS:-2000000}"

for pair in "ON:$on_dir" "OFF:$off_dir"; do
  mode="${pair%%:*}"
  dir="${pair#*:}"
  # bench/ is entered when tests are built even with TLC_BUILD_BENCH=OFF
  # (bench_scheduler backs the perf-smoke label); the targeted build below
  # compiles only the scheduler bench and its few deps.
  cmake -S "$repo_root" -B "$dir" \
    -DCMAKE_BUILD_TYPE=Release \
    -DTLC_TRACE="$mode" \
    -DTLC_BUILD_BENCH=OFF \
    -DTLC_BUILD_TESTS=ON \
    -DTLC_BUILD_EXAMPLES=OFF \
    >/dev/null
  cmake --build "$dir" -j "$(nproc)" --target bench_scheduler >/dev/null
done

# Best observed mixed-phase throughput over 3 runs (events/s). The bench
# writes BENCH_sched.json into the working directory.
best_mixed() {
  dir="$1"
  best=0
  for _ in 1 2 3; do
    (cd "$dir" && "./bench/bench_scheduler" --events "$events" >/dev/null)
    v="$(sed -n 's/.*"mixed_events_per_sec": \([0-9.]*\).*/\1/p' \
         "$dir/BENCH_sched.json")"
    best="$(awk -v a="$best" -v b="$v" 'BEGIN { print (b > a) ? b : a }')"
  done
  echo "$best"
}

on_rate="$(best_mixed "$on_dir")"
off_rate="$(best_mixed "$off_dir")"

awk -v on="$on_rate" -v off="$off_rate" 'BEGIN {
  ratio = (off > 0) ? on / off : 0
  printf "span overhead: TLC_TRACE=ON %.0f ev/s vs OFF %.0f ev/s (ratio %.3f)\n",
         on, off, ratio
  if (ratio < 0.95) {
    print "FAIL: span instrumentation costs more than 5% on the scheduler hot path" > "/dev/stderr"
    exit 1
  }
  print "OK: span instrumentation costs <=5% on the scheduler hot path."
}'
