// Binary wire codec for TLC protocol messages.
//
// Big-endian, length-prefixed primitives. Charging messages are small
// (hundreds of bytes), so the codec favours explicitness and bounds-checked
// reads over zero-copy tricks: a malformed message must fail loudly, not
// read out of bounds.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/hex.hpp"
#include "common/units.hpp"

namespace tlc::wire {

/// Thrown when decoding runs past the end of the buffer or hits an
/// impossible value. Verification treats this as "message invalid".
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Double encoded as IEEE-754 bits, big-endian.
  void f64(double v);
  /// Length-prefixed (u32) byte string.
  void bytes(std::span<const std::uint8_t> data);
  /// Length-prefixed (u32) UTF-8 string.
  void string(std::string_view s);
  /// Raw bytes with no length prefix (fixed-size fields).
  void raw(std::span<const std::uint8_t> data);

  [[nodiscard]] const ByteVec& buffer() const { return buf_; }
  [[nodiscard]] ByteVec take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// Drops the contents but keeps the allocation, so one Writer can encode
  /// a stream of messages with a single amortised buffer (the signing path
  /// keeps a thread-local Writer for exactly this).
  void clear() { buf_.clear(); }
  void reserve(std::size_t n) { buf_.reserve(n); }

 private:
  ByteVec buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] ByteVec bytes();
  [[nodiscard]] std::string string();
  [[nodiscard]] ByteVec raw(std::size_t n);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return remaining() == 0; }
  /// Throws DecodeError unless the buffer is fully consumed.
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace tlc::wire
