#include "fault/invariants.hpp"

#include <algorithm>
#include <string>

#include "exp/sweep.hpp"
#include "exp/wire_exchange.hpp"
#include "net/packet.hpp"
#include "obs/span.hpp"
#include "tlc/negotiation.hpp"
#include "tlc/strategy.hpp"

namespace tlc::fault {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string bytes_str(Bytes b) { return std::to_string(b.count()); }

core::StrategyPtr make_style(ClaimStyle style, core::PartyRole role,
                             double factor) {
  switch (style) {
    case ClaimStyle::kOptimal:
      return role == core::PartyRole::kEdgeVendor
                 ? core::make_optimal_edge()
                 : core::make_optimal_operator();
    case ClaimStyle::kGreedy:
      return core::make_greedy(role, factor);
    case ClaimStyle::kOscillating:
      return core::make_oscillating(role);
  }
  return core::make_optimal_edge();
}

void add(std::vector<Violation>& out, std::uint64_t plan_id,
         const char* invariant, std::string detail, std::string trace = {}) {
  out.push_back(
      Violation{plan_id, invariant, std::move(detail), std::move(trace)});
}

void check_cycle(const FaultPlan& plan, std::uint64_t run_seed,
                 const exp::CycleOutcome& c, std::vector<Violation>& out) {
  const core::CrossCheckTolerance tol;
  const Bytes slack_op = tol.slack_for(c.op_view.received_estimate);
  const Bytes slack_edge = tol.slack_for(c.edge_view.sent_estimate);
  const std::string where = "cycle " + std::to_string(c.cycle);
  // The exchange every per-cycle violation blames: derived from the run's
  // identity rather than recorded, so it equals the trace id tagging this
  // cycle's settlement spans in a JSONL trace of the same run.
  const std::string trace = obs::span_hex(exp::exchange_trace_id(
      run_seed, exp::WireSettlementConfig{}.device, c.cycle, c.direction));

  // T4: rational vs rational converges immediately (fault magnitudes are
  // bounded so honest views stay within the cross-check tolerance).
  if (!c.optimal.converged || c.optimal.rounds > 1) {
    add(out, plan.id, "t4-rounds",
        where + ": optimal negotiation converged=" +
            (c.optimal.converged ? "true" : "false") +
            " rounds=" + std::to_string(c.optimal.rounds),
        trace);
  }

  // T2: the converged charge is bounded by the recorded views ± slack.
  if (c.optimal.converged) {
    if (c.optimal.charged + slack_op < c.op_view.received_estimate) {
      add(out, plan.id, "t2-bound",
          where + ": charged " + bytes_str(c.optimal.charged) +
              " under operator received " +
              bytes_str(c.op_view.received_estimate) + " - slack " +
              bytes_str(slack_op),
          trace);
    }
    if (c.optimal.charged > c.edge_view.sent_estimate + slack_edge) {
      add(out, plan.id, "t2-bound",
          where + ": charged " + bytes_str(c.optimal.charged) +
              " over edge sent " + bytes_str(c.edge_view.sent_estimate) +
              " + slack " + bytes_str(slack_edge),
          trace);
    }
    const Bytes lo = std::min(c.optimal.edge_claim, c.optimal.operator_claim);
    const Bytes hi = std::max(c.optimal.edge_claim, c.optimal.operator_claim);
    if (c.optimal.charged < lo || c.optimal.charged > hi) {
      add(out, plan.id, "t2-claim-window",
          where + ": charged " + bytes_str(c.optimal.charged) +
              " outside final claims [" + bytes_str(lo) + ", " +
              bytes_str(hi) + "]",
          trace);
    }
  }

  // Selfish-but-naive play must still terminate inside the round budget.
  if (!c.random.converged) {
    add(out, plan.id, "random-convergence",
        where + ": TLC-random did not converge (rounds=" +
            std::to_string(c.random.rounds) + ")",
        trace);
  }

  // Adversarial probe: negotiate the same real views with the plan's claim
  // styles. Only the rational party's bound is asserted — Theorem 2
  // protects parties that follow the protocol, not ones that claim
  // against their own interest.
  const core::StrategyPtr edge_strategy = make_style(
      plan.exchange.edge, core::PartyRole::kEdgeVendor, plan.exchange.edge_factor);
  const core::StrategyPtr op_strategy =
      make_style(plan.exchange.op, core::PartyRole::kCellularOperator,
                 plan.exchange.op_factor);
  Rng nrng{exp::splitmix64(plan.seed ^ (c.cycle * 0x9e3779b97f4a7c15ULL))};
  const core::NegotiationConfig ncfg{0.5, 64};
  const core::NegotiationOutcome adv = core::negotiate(
      *edge_strategy, c.edge_view, *op_strategy, c.op_view, ncfg, nrng);
  if (adv.converged) {
    if (plan.exchange.op == ClaimStyle::kOptimal &&
        adv.charged + slack_op < c.op_view.received_estimate) {
      add(out, plan.id, "adversarial-op-bound",
          where + ": " + std::string{to_string(plan.exchange.edge)} +
              " edge pushed charge to " + bytes_str(adv.charged) +
              " below operator received " +
              bytes_str(c.op_view.received_estimate) + " - slack " +
              bytes_str(slack_op),
          trace);
    }
    if (plan.exchange.edge == ClaimStyle::kOptimal &&
        adv.charged > c.edge_view.sent_estimate + slack_edge) {
      add(out, plan.id, "adversarial-edge-bound",
          where + ": " + std::string{to_string(plan.exchange.op)} +
              " operator pushed charge to " + bytes_str(adv.charged) +
              " above edge sent " + bytes_str(c.edge_view.sent_estimate) +
              " + slack " + bytes_str(slack_edge),
          trace);
    }
  }
}

void check_gap_identity(const FaultPlan& plan,
                        const obs::MetricsSnapshot& m,
                        std::vector<Violation>& out) {
  // Downlink: charged before the radio leg, so every charged byte is
  // either delivered, still frozen in the stall ledger, or attributed to
  // exactly one drop cause. Duplicates live in their own counters and
  // never inflate delivered_*.
  const std::uint64_t charged_dl = m.counter_or_zero("epc.gw.charged_dl_bytes");
  const std::uint64_t stalled_dl =
      m.counter_or_zero("epc.gw.fault.stalled_dl_bytes");
  // Zero-rated settlement signaling traverses the same links uncharged;
  // its injected (DL) / delivered (UL) volume balances the identities.
  const std::uint64_t settle_dl = m.counter_or_zero("tlc.settle.dl_sent_bytes");
  const std::uint64_t delivered_dl = m.counter_or_zero("net.dl.delivered_bytes");
  std::uint64_t drops_dl = 0;
  for (std::size_t i = 1; i < net::kDropCauseCount; ++i) {
    drops_dl += m.counter_or_zero(
        std::string{"net.dl.drop."} +
        net::to_string(static_cast<net::DropCause>(i)) + "_bytes");
  }
  if (charged_dl + stalled_dl + settle_dl != delivered_dl + drops_dl) {
    add(out, plan.id, "gap-identity-dl",
        "charged " + std::to_string(charged_dl) + " + stalled " +
            std::to_string(stalled_dl) + " + settle " +
            std::to_string(settle_dl) + " != delivered " +
            std::to_string(delivered_dl) + " + drops " +
            std::to_string(drops_dl));
  }

  // Uplink: charged after the radio leg — every byte delivered over the
  // air reaches the gateway and is either charged or frozen.
  const std::uint64_t charged_ul = m.counter_or_zero("epc.gw.charged_ul_bytes");
  const std::uint64_t stalled_ul =
      m.counter_or_zero("epc.gw.fault.stalled_ul_bytes");
  const std::uint64_t delivered_ul = m.counter_or_zero("net.ul.delivered_bytes");
  const std::uint64_t settle_ul =
      m.counter_or_zero("tlc.settle.ul_delivered_bytes");
  if (delivered_ul != charged_ul + stalled_ul + settle_ul) {
    add(out, plan.id, "gap-identity-ul",
        "delivered " + std::to_string(delivered_ul) + " != charged " +
            std::to_string(charged_ul) + " + stalled " +
            std::to_string(stalled_ul) + " + settle " +
            std::to_string(settle_ul));
  }
}

void check_batch_audit(const FaultPlan& plan,
                       const exp::ScenarioResult& result,
                       std::vector<Violation>& out) {
  if (!result.batch_audit.has_value()) {
    if (plan.wire_settlement && plan.poc_batch_size > 0) {
      add(out, plan.id, "batch-audit",
          "plan enables batching but the result carries no batch audit");
    }
    return;
  }
  const exp::BatchAuditSummary& b = *result.batch_audit;

  // Honest run: every hash-chained head and every Merkle-committed receipt
  // must verify — a single rejection means the batch layer lost or
  // corrupted a receipt the settlements actually produced.
  if (b.heads_rejected != 0 || b.receipts_rejected != 0) {
    add(out, plan.id, "batch-audit",
        "honest batches rejected: heads " + std::to_string(b.heads_rejected) +
            ", receipts " + std::to_string(b.receipts_rejected));
  }

  // Conservation: the audit must cover exactly the completed settlements,
  // and the verified volume must reproduce their agreed charges.
  std::uint64_t completed = 0;
  Bytes settled_volume;
  for (const exp::SettlementOutcome& s : result.settlements) {
    if (s.completed) {
      ++completed;
      settled_volume += s.charged;
    }
  }
  if (b.receipts_total != completed || b.receipts_accepted != completed) {
    add(out, plan.id, "batch-audit",
        "audited " + std::to_string(b.receipts_total) + " receipts (" +
            std::to_string(b.receipts_accepted) + " accepted) but " +
            std::to_string(completed) + " settlements completed");
  }
  if (b.total_verified_volume != settled_volume) {
    add(out, plan.id, "batch-audit",
        "verified volume " + bytes_str(b.total_verified_volume) +
            " != settled volume " + bytes_str(settled_volume));
  }
  if (b.batch_size > 0 && completed > 0) {
    const std::uint64_t expected_batches =
        (completed + b.batch_size - 1) / b.batch_size;
    if (b.batches != expected_batches) {
      add(out, plan.id, "batch-audit",
          "expected " + std::to_string(expected_batches) + " batches of " +
              std::to_string(b.batch_size) + " for " +
              std::to_string(completed) + " receipts, audited " +
              std::to_string(b.batches));
    }
  }
}

}  // namespace

std::string Violation::to_json() const {
  std::string out = "{\"plan\":" + std::to_string(plan_id) +
                    ",\"invariant\":\"" + json_escape(invariant) +
                    "\",\"detail\":\"" + json_escape(detail) + "\"";
  if (!trace.empty()) out += ",\"trace\":\"" + json_escape(trace) + "\"";
  out += "}";
  return out;
}

void check_scenario_invariants(const FaultPlan& plan,
                               const exp::ScenarioResult& result,
                               std::vector<Violation>& out) {
  for (const exp::CycleOutcome& c : result.cycles) {
    check_cycle(plan, result.config.seed, c, out);
  }
  check_gap_identity(plan, result.metrics, out);
  check_batch_audit(plan, result, out);
}

void check_attack_outcomes(const FaultPlan& plan,
                           const std::vector<AttackOutcome>& outcomes,
                           std::vector<Violation>& out) {
  for (const AttackOutcome& a : outcomes) {
    if (!a.rejected) {
      add(out, plan.id, "wire-attack-accepted", a.attack + ": " + a.detail);
    }
  }
}

}  // namespace tlc::fault
