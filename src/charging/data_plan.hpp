// Data-plan parameters agreed between the edge app vendor and the cellular
// operator before any charging cycle starts (§5.3.1 of the paper).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/units.hpp"

namespace tlc::charging {

/// Identifies one charging cycle: the half-open interval
/// [start, start + length). Both parties derive the same boundaries from
/// their local clocks; clock offset is what makes their observed windows
/// differ (Fig. 18).
struct ChargingCycle {
  TimePoint start = kTimeZero;
  Duration length = std::chrono::hours{1};
  std::uint64_t index = 0;

  [[nodiscard]] TimePoint end() const { return start + length; }

  friend bool operator==(const ChargingCycle&, const ChargingCycle&) = default;
};

/// The agreed plan. `loss_weight` is the paper's `c ∈ [0, 1]`: the fraction
/// of *lost* data that is still charged (c = 0: only received data; c = 1:
/// all sent data).
struct DataPlan {
  double loss_weight = 0.5;            // c
  Duration cycle_length = std::chrono::hours{1};  // T
  Bytes quota{15ull * 1000 * 1000 * 1000};        // "unlimited" plan quota
  BitRate throttle_rate = BitRate::from_kbps(128);
  double price_per_mb = 0.01;          // informational; not used by protocol

  void validate() const {
    if (loss_weight < 0.0 || loss_weight > 1.0) {
      throw std::invalid_argument{"DataPlan: loss_weight must be in [0,1]"};
    }
    if (cycle_length <= Duration::zero()) {
      throw std::invalid_argument{"DataPlan: cycle_length must be positive"};
    }
  }

  /// The cycle containing time `t` (plan cycles start at t = 0; local
  /// clock readings before the epoch clamp into cycle 0).
  [[nodiscard]] ChargingCycle cycle_at(TimePoint t) const {
    const auto since_epoch = t.time_since_epoch();
    const std::uint64_t index =
        since_epoch.count() <= 0
            ? 0
            : static_cast<std::uint64_t>(since_epoch.count() /
                                         cycle_length.count());
    return ChargingCycle{
        kTimeZero + cycle_length * static_cast<std::int64_t>(index),
        cycle_length, index};
  }

  friend bool operator==(const DataPlan&, const DataPlan&) = default;
};

}  // namespace tlc::charging
