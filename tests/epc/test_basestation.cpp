#include "epc/basestation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tlc::epc {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

charging::DataPlan plan_300s() {
  charging::DataPlan plan;
  plan.cycle_length = seconds{300};
  return plan;
}

net::Packet packet(std::uint64_t id, std::uint64_t size = 1000) {
  net::Packet p;
  p.id = id;
  p.size = Bytes{size};
  return p;
}

BaseStationConfig good_radio_config() {
  BaseStationConfig cfg;
  cfg.radio.base_rss = Dbm{-80.0};
  cfg.radio.shadow_sigma_db = 0.0;
  cfg.radio.baseline_loss = 0.0;
  cfg.radio.dip_rate_per_s = 0.0;
  return cfg;
}

struct Fixture : ::testing::Test {
  sim::Scheduler sched;
  EdgeDevice device{plan_300s(), sim::NodeClock{}};
  std::vector<net::Packet> ul_out;
  std::vector<CounterCheckReport> reports;
  std::vector<bool> session_events;

  std::unique_ptr<BaseStation> make_bs(BaseStationConfig cfg) {
    auto bs = std::make_unique<BaseStation>(sched, cfg, Rng{1}, device,
                                            plan_300s(), sim::NodeClock{});
    bs->set_uplink_sink([this](const net::Packet& p, TimePoint) {
      ul_out.push_back(p);
    });
    bs->set_counter_check_sink(
        [this](const CounterCheckReport& r) { reports.push_back(r); });
    bs->set_session_callback([this](bool attached, TimePoint) {
      session_events.push_back(attached);
    });
    bs->start();
    return bs;
  }
};

TEST_F(Fixture, DownlinkReachesDevice) {
  auto bs = make_bs(good_radio_config());
  bs->send_downlink(packet(1, 500));
  sched.run_until(kTimeZero + seconds{1});
  EXPECT_EQ(device.modem_rx_bytes(), 500u);
  EXPECT_EQ(device.app_usage(0).downlink, Bytes{500});
}

TEST_F(Fixture, UplinkReachesGatewaySink) {
  auto bs = make_bs(good_radio_config());
  bs->send_uplink(packet(1, 700));
  sched.run_until(kTimeZero + seconds{1});
  ASSERT_EQ(ul_out.size(), 1u);
  EXPECT_EQ(ul_out[0].size, Bytes{700});
  EXPECT_EQ(device.modem_tx_bytes(), 700u);
}

TEST_F(Fixture, StaysAttachedWithGoodRadio) {
  auto bs = make_bs(good_radio_config());
  sched.run_until(kTimeZero + seconds{30});
  EXPECT_TRUE(bs->attached());
  EXPECT_EQ(bs->detach_count(), 0u);
  EXPECT_TRUE(session_events.empty());
}

TEST_F(Fixture, DetachesAfterFiveSecondsOfDisconnect) {
  // §3.2: "Our LTE core takes 5s on average for this."
  BaseStationConfig cfg = good_radio_config();
  cfg.radio.base_rss = Dbm{-130.0};  // dead zone from the start
  auto bs = make_bs(cfg);
  sched.run_until(kTimeZero + seconds{4});
  EXPECT_TRUE(bs->attached());  // not yet
  sched.run_until(kTimeZero + seconds{6});
  EXPECT_FALSE(bs->attached());
  EXPECT_EQ(bs->detach_count(), 1u);
  ASSERT_EQ(session_events.size(), 1u);
  EXPECT_FALSE(session_events[0]);
}

TEST_F(Fixture, DetachFlushesAndBlocksDownlink) {
  BaseStationConfig cfg = good_radio_config();
  cfg.radio.base_rss = Dbm{-130.0};
  auto bs = make_bs(cfg);
  int drops = 0;
  bs->set_downlink_drop_observer(
      [&drops](const net::Packet&, net::DropCause, TimePoint) { ++drops; });
  bs->send_downlink(packet(1));
  sched.run_until(kTimeZero + seconds{6});
  EXPECT_FALSE(bs->attached());
  bs->send_downlink(packet(2));  // arrives while detached
  EXPECT_GE(drops, 2);
}

TEST_F(Fixture, RrcIdleTriggersCounterCheckBeforeRelease) {
  // §5.4: the base station queries the modem counters before releasing
  // an idle radio connection.
  BaseStationConfig cfg = good_radio_config();
  cfg.rrc_idle_timeout = seconds{2};
  auto bs = make_bs(cfg);
  bs->send_downlink(packet(1, 400));
  sched.run_until(kTimeZero + seconds{10});
  ASSERT_GE(reports.size(), 1u);
  EXPECT_EQ(reports[0].cumulative_dl_bytes, 400u);
}

TEST_F(Fixture, TriggeredCounterCheckReportsCumulativeCounters) {
  auto bs = make_bs(good_radio_config());
  bs->send_downlink(packet(1, 250));
  sched.run_until(kTimeZero + seconds{1});
  EXPECT_TRUE(bs->trigger_counter_check());
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].cumulative_dl_bytes, 250u);
  EXPECT_EQ(bs->counter_check_count(), 1u);
}

TEST_F(Fixture, CounterCheckFailsWhenDetached) {
  BaseStationConfig cfg = good_radio_config();
  cfg.radio.base_rss = Dbm{-130.0};
  auto bs = make_bs(cfg);
  sched.run_until(kTimeZero + seconds{6});
  EXPECT_FALSE(bs->trigger_counter_check());
  EXPECT_TRUE(reports.empty());
}

TEST_F(Fixture, ObservedUplinkRadioLossBuckets) {
  BaseStationConfig cfg = good_radio_config();
  cfg.radio.baseline_loss = 1.0;  // every granted transmission fails
  auto bs = make_bs(cfg);
  bs->send_uplink(packet(1, 600));
  sched.run_until(kTimeZero + seconds{1});
  EXPECT_EQ(bs->observed_uplink_radio_loss(0), Bytes{600});
  EXPECT_TRUE(ul_out.empty());
}

TEST_F(Fixture, ModemQueueLossIsNotObservable) {
  // Overflow in the device's modem queue happens before any grant — the
  // operator cannot see it (one source of its x̂_e estimation error).
  BaseStationConfig cfg = good_radio_config();
  cfg.uplink.capacity = BitRate::from_kbps(8);  // 1 KB/s → backlog
  cfg.uplink.buffer_size = Bytes{2'000};
  auto bs = make_bs(cfg);
  for (std::uint64_t i = 0; i < 20; ++i) bs->send_uplink(packet(i, 1'000));
  sched.run_until(kTimeZero + seconds{1});
  EXPECT_EQ(bs->observed_uplink_radio_loss(0), Bytes{0});
  EXPECT_GT(bs->uplink().stats().drops_by_cause.count(
                net::DropCause::kQueueOverflow),
            0u);
}

TEST_F(Fixture, BackgroundLoadSetsBothDirections) {
  auto bs = make_bs(good_radio_config());
  bs->set_background_load(BitRate::from_mbps(100), BitRate::from_mbps(10));
  EXPECT_EQ(bs->downlink().background_load().mbps(), 100.0);
  EXPECT_EQ(bs->uplink().background_load().mbps(), 10.0);
}

}  // namespace
}  // namespace tlc::epc
