// The Offline Charging System (OFCS / CDF in 4G, CHF in 5G — §2.1).
//
// Converts per-cycle charging records into bills and applies policy-driven
// actions (§2.1): the "unlimited" plan's quota-then-throttle behaviour
// (e.g. 128 Kbps after 15 GB), and — when TLC is deployed — preferring the
// negotiated, PoC-backed volume over the raw gateway CDR.
//
// This is where the two billing worlds meet:
//   * legacy mode: bill = price × gateway CDR volume (whatever the
//     operator's records claim — unbounded under a selfish operator);
//   * TLC mode: bill = price × the negotiated volume x, accepted only if
//     the attached Proof-of-Charging verifies.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "charging/data_plan.hpp"
#include "charging/usage.hpp"
#include "obs/obs.hpp"
#include "tlc/verifier.hpp"
#include "wire/legacy_cdr.hpp"

namespace tlc::epc {

enum class BillSource : std::uint8_t {
  kLegacyCdr = 0,    // gateway record, unaudited
  kVerifiedPoc = 1,  // TLC-negotiated volume, PoC verified
};

struct BillLine {
  std::uint64_t cycle = 0;
  Bytes volume;
  double amount = 0.0;  // plan.price_per_mb × MB
  BillSource source = BillSource::kLegacyCdr;
  bool throttled_after = false;  // quota exceeded during this cycle
};

struct BillingStatement {
  std::vector<BillLine> lines;
  double total = 0.0;
  Bytes total_volume;
};

class Ofcs {
 public:
  /// `verifier` may be null: then only legacy CDR billing is available.
  Ofcs(charging::DataPlan plan, core::PublicVerifier* verifier = nullptr);

  /// Ingests the gateway's legacy CDR for a cycle (legacy billing path).
  void ingest_legacy_cdr(std::uint64_t cycle, const wire::LegacyCdr& cdr,
                         charging::Direction billed_direction);

  /// Ingests a negotiated PoC; returns the verification result. Only a
  /// PoC that verifies replaces the legacy volume for its cycle.
  core::VerifyResult ingest_poc(std::span<const std::uint8_t> poc_bytes);

  /// Cumulative billed volume so far (drives the quota policy).
  [[nodiscard]] Bytes cumulative_volume() const { return cumulative_; }

  /// Policy: true once the cumulative volume exceeded the plan quota —
  /// the operator throttles the bearer to plan.throttle_rate (§2.1).
  [[nodiscard]] bool throttle_active() const {
    return cumulative_ > plan_.quota;
  }
  [[nodiscard]] BitRate current_rate_limit(BitRate nominal) const {
    return throttle_active() ? plan_.throttle_rate : nominal;
  }

  /// The statement over all ingested cycles, TLC lines preferred where a
  /// verified PoC exists.
  [[nodiscard]] BillingStatement statement() const;

  [[nodiscard]] const charging::DataPlan& plan() const { return plan_; }

  /// Counters epc.ofcs.{legacy_cdrs,pocs_verified,pocs_rejected}; trace
  /// component "epc.ofcs" ("legacy_cdr" at debug, "poc" at info — rejected
  /// PoCs are traced at warn with the verifier's reason).
  void set_observability(obs::Obs* obs);

 private:
  void recompute_cumulative();

  charging::DataPlan plan_;
  core::PublicVerifier* verifier_;
  obs::Obs* obs_ = nullptr;
  obs::Counter* m_legacy_cdrs_ = nullptr;
  obs::Counter* m_pocs_verified_ = nullptr;
  obs::Counter* m_pocs_rejected_ = nullptr;
  struct CycleBill {
    std::optional<Bytes> legacy;
    std::optional<Bytes> verified;
  };
  std::map<std::uint64_t, CycleBill> cycles_;
  Bytes cumulative_;
};

}  // namespace tlc::epc
