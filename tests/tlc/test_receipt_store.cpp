#include "tlc/receipt_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "tlc/protocol_fixture.hpp"

namespace tlc::core {
namespace {

class ReceiptStoreTest : public testing::ProtocolFixture {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("tlc_receipts_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  static constexpr LocalView kView{Bytes{1'000'000}, Bytes{920'000}};
  std::filesystem::path path_;
};

TEST_F(ReceiptStoreTest, EmptyStoreLoadsNothing) {
  ReceiptStore store{path_};
  EXPECT_TRUE(store.load_all().empty());
  EXPECT_EQ(store.count(), 0u);
}

TEST_F(ReceiptStoreTest, AppendLoadRoundTrip) {
  ReceiptStore store{path_};
  const PocMsg poc1 = make_valid_poc(kView, kView, 1);
  const PocMsg poc2 = make_valid_poc(kView, kView, 2);
  store.append(poc1);
  store.append(poc2);
  const auto loaded = store.load_all();
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].encode(), poc1.encode());
  EXPECT_EQ(loaded[1].encode(), poc2.encode());
}

TEST_F(ReceiptStoreTest, PersistsAcrossInstances) {
  {
    ReceiptStore store{path_};
    store.append(make_valid_poc(kView, kView, 3));
  }
  ReceiptStore reopened{path_};
  EXPECT_EQ(reopened.count(), 1u);
}

TEST_F(ReceiptStoreTest, RejectsForeignFile) {
  std::ofstream os{path_, std::ios::binary};
  os << "definitely not a receipt file";
  os.close();
  ReceiptStore store{path_};
  EXPECT_THROW((void)store.load_all(), std::runtime_error);
}

TEST_F(ReceiptStoreTest, DetectsTruncation) {
  ReceiptStore store{path_};
  store.append(make_valid_poc(kView, kView, 4));
  // Chop the tail off the file.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 10);
  EXPECT_THROW((void)store.load_all(), std::runtime_error);
}

TEST_F(ReceiptStoreTest, AuditVerifiesEveryReceipt) {
  ReceiptStore store{path_};
  store.append(make_valid_poc(kView, kView, 5));
  store.append(make_valid_poc(kView, kView, 6));
  PublicVerifier verifier{edge_keys().public_key(),
                          operator_keys().public_key(), plan()};
  const auto report = store.audit(verifier);
  EXPECT_EQ(report.total, 2u);
  EXPECT_EQ(report.accepted, 2u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(report.total_verified_volume, Bytes{2 * 960'000});
}

TEST_F(ReceiptStoreTest, AuditFlagsDuplicateReceipts) {
  ReceiptStore store{path_};
  const PocMsg poc = make_valid_poc(kView, kView, 7);
  store.append(poc);
  store.append(poc);  // double-billing attempt
  PublicVerifier verifier{edge_keys().public_key(),
                          operator_keys().public_key(), plan()};
  const auto report = store.audit(verifier);
  EXPECT_EQ(report.total, 2u);
  EXPECT_EQ(report.accepted, 1u);
  EXPECT_EQ(report.by_result.at(VerifyResult::kReplayed), 1u);
}

TEST_F(ReceiptStoreTest, AuditFlagsTamperedReceipt) {
  ReceiptStore store{path_};
  PocMsg poc = make_valid_poc(kView, kView, 8);
  poc.charged = Bytes{1};
  store.append(poc);
  PublicVerifier verifier{edge_keys().public_key(),
                          operator_keys().public_key(), plan()};
  const auto report = store.audit(verifier);
  EXPECT_EQ(report.rejected, 1u);
  EXPECT_EQ(report.by_result.at(VerifyResult::kBadPocSignature), 1u);
}

}  // namespace
}  // namespace tlc::core
