// Deterministic random number generation.
//
// Every stochastic component (radio fading, packet drops, selfish claim
// sampling) draws from an explicitly seeded Rng so experiments are exactly
// reproducible; there is no hidden global generator.
#pragma once

#include <cstdint>
#include <random>

namespace tlc {

/// xoshiro256** — fast, high-quality, and stable across platforms
/// (std::mt19937 streams are also portable, but xoshiro is ~4x faster and
/// the state is trivially copyable for snapshotting simulations).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return ~static_cast<result_type>(0);
  }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);
  /// Bernoulli trial.
  bool chance(double probability);
  /// Normal with given mean/stddev.
  double normal(double mean, double stddev);
  /// Exponential with given mean (mean > 0).
  double exponential(double mean);

  /// Derive an independent child stream (for per-component seeding).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace tlc
