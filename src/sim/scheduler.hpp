// Discrete-event simulation scheduler.
//
// All network, EPC, and protocol behaviour in this reproduction runs on one
// of these: components schedule callbacks at absolute or relative simulated
// times, and `run_until`/`run` dispatch them in timestamp order. Ties are
// broken by insertion order so runs are fully deterministic.
//
// Hot-path memory model (DESIGN.md §7): steady-state schedule→dispatch
// performs zero heap allocations. Callbacks live in `InlineCallback` slots
// (fixed inline capture buffer) recycled through a free list; the priority
// queue is a 4-ary implicit heap over 24-byte {when, seq, slot} entries; and
// cancellation is O(1) — an EventId encodes (slot, generation), so cancel()
// destroys the callable in place and the heap entry is lazily discarded as a
// tombstone when it reaches the front.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "obs/obs.hpp"
#include "sim/inline_callback.hpp"

namespace tlc::sim {

/// Handle for cancelling a scheduled event. Packs (slot << 32 | generation);
/// generations start at 1, so 0 is never a live id and works as a null
/// sentinel. Stale ids (fired or long-cancelled) fail the generation check
/// and cancel() is a no-op.
using EventId = std::uint64_t;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time (advances only inside run/run_until/step).
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `fn` at absolute time `when` (must be ≥ now()). The callable's
  /// capture must fit InlineCallback::kCapacity (compile-time checked).
  EventId schedule_at(TimePoint when, InlineCallback fn);

  /// Schedule `fn` after `delay` from now.
  EventId schedule_after(Duration delay, InlineCallback fn);

  /// Cancel a pending event in O(1); no-op if already fired or cancelled.
  void cancel(EventId id);

  /// Pre-sizes the event heap and slot pool (packet paths schedule
  /// thousands of events; reserving once avoids the early growth
  /// reallocations).
  void reserve(std::size_t events) {
    heap_.reserve(events);
    slots_.reserve(events);
    free_slots_.reserve(events);
  }

  /// Dispatch the next event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `deadline` passes. Time is left at
  /// min(deadline, last event time). Returns number of events dispatched.
  std::uint64_t run_until(TimePoint deadline);

  /// Run until the queue drains entirely.
  std::uint64_t run();

  /// Exact count of events that will still dispatch (excludes cancelled
  /// entries awaiting lazy removal). O(1).
  [[nodiscard]] std::size_t pending_events() const { return live_; }

  /// Lifetime stats (monotonic over the scheduler's life).
  [[nodiscard]] std::uint64_t events_scheduled() const { return scheduled_; }
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }
  /// Cancel requests that actually killed a pending event (each distinct
  /// EventId counted once; stale ids never match their slot's generation).
  [[nodiscard]] std::uint64_t events_cancelled() const {
    return cancelled_count_;
  }
  [[nodiscard]] std::size_t max_queue_depth() const { return max_depth_; }
  /// Cancelled tombstones still parked in the heap awaiting lazy removal;
  /// bounded by the heap size by construction (testing hook).
  [[nodiscard]] std::size_t cancelled_backlog() const {
    return heap_.size() - live_;
  }

  /// Attach a metrics/trace domain: counters sim.sched.{scheduled,
  /// dispatched,cancelled} and gauge sim.sched.queue_depth. Pass nullptr
  /// to detach. The Obs must outlive the scheduler (or be detached first).
  void set_observability(obs::Obs* obs);

 private:
  /// Heap entries are deliberately tiny (24 B): a 4-ary sift touches up to
  /// four children that then span at most two cache lines, and sift moves
  /// copy three words instead of relocating a type-erased callable.
  struct HeapEntry {
    TimePoint when;
    std::uint64_t seq;   // FIFO tie-break
    std::uint32_t slot;  // index into slots_
  };

  /// One scheduled callback. A slot has exactly one outstanding HeapEntry
  /// referring to it, so it is recycled (generation bumped, pushed on the
  /// free list) only when that entry pops — never while the heap can still
  /// reach it. `engaged == false` before the pop marks a cancelled
  /// tombstone.
  struct Slot {
    InlineCallback fn;
    std::uint32_t generation = 1;
    bool engaged = false;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  TimePoint now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t cancelled_count_ = 0;
  std::size_t max_depth_ = 0;
  std::size_t live_ = 0;  // engaged slots = exactly pending_events()
  std::vector<HeapEntry> heap_;           // 4-ary implicit min-heap
  std::vector<Slot> slots_;               // callback storage, slot-indexed
  std::vector<std::uint32_t> free_slots_;  // recycled slot indices

  obs::Counter* m_scheduled_ = nullptr;
  obs::Counter* m_dispatched_ = nullptr;
  obs::Counter* m_cancelled_ = nullptr;
  obs::Gauge* m_depth_ = nullptr;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void pop_front_entry();
  void note_depth();
};

}  // namespace tlc::sim
