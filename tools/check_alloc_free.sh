#!/usr/bin/env sh
# CI-style check: the scheduler's steady-state event hot path must stay
# allocation-free. Builds the default configuration and runs
# test_scheduler_alloc (global operator-new hook asserting zero heap
# allocations per schedule→dispatch and schedule→cancel→drain cycle) plus
# the perf-smoke scheduler microbench, which exercises the 4-ary heap and
# slot recycling at a small iteration count.
#
# Self-configuring: a missing or unconfigured build dir is created from the
# `default` preset (or a plain configure when a custom dir is given), so the
# script behaves identically on a clean CI checkout and a developer tree.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  if [ "$build_dir" = "$repo_root/build" ]; then
    (cd "$repo_root" && cmake --preset default >/dev/null)
  else
    cmake -S "$repo_root" -B "$build_dir" >/dev/null
  fi
fi

cmake --build "$build_dir" -j "$(nproc)" \
  --target test_scheduler_alloc bench_scheduler

"$build_dir/tests/test_scheduler_alloc"
"$build_dir/bench/bench_scheduler" --events 20000

echo "OK: scheduler hot path is allocation-free."
