// Unit tests for the metrics registry: instrument semantics, reference
// stability, snapshot isolation, and the canonical JSON export.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

namespace tlc::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, TracksValueAndHighWatermark) {
  Gauge g;
  g.set(3.0);
  g.set(7.5);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 7.5);
  g.add(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 12.0);
  EXPECT_DOUBLE_EQ(g.max(), 12.0);
}

TEST(Histogram, BucketsByInclusiveUpperBound) {
  Histogram h{{1.0, 10.0}};
  h.observe(1.0);    // == bound 1 → bucket 0
  h.observe(0.5);    // bucket 0
  h.observe(1.5);    // bucket 1
  h.observe(10.0);   // == bound 10 → bucket 1
  h.observe(100.0);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 113.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({5.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(reg.counter("x").value(), 1u);
}

TEST(MetricsRegistry, ReferencesSurviveLaterRegistrations) {
  MetricsRegistry reg;
  Counter& first = reg.counter("first");
  for (int i = 0; i < 1000; ++i) {
    reg.counter("other." + std::to_string(i));
  }
  first.inc(7);
  EXPECT_EQ(reg.counter("first").value(), 7u);
}

TEST(MetricsRegistry, HistogramBoundsFixedAtFirstRegistration) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  Histogram& again = reg.histogram("h", {99.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.upper_bounds().size(), 2u);
}

TEST(MetricsRegistry, SnapshotIsIsolatedFromLaterMutation) {
  MetricsRegistry reg;
  reg.counter("c").inc(5);
  reg.gauge("g").set(1.5);
  const MetricsSnapshot snap = reg.snapshot();
  reg.counter("c").inc(100);
  reg.gauge("g").set(9.0);
  EXPECT_EQ(snap.counter_or_zero("c"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g").value, 1.5);
}

TEST(MetricsSnapshot, CounterOrZeroForUnknownName) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.snapshot().counter_or_zero("never.registered"), 0u);
}

TEST(MetricsSnapshot, CanonicalJsonShape) {
  MetricsRegistry reg;
  reg.counter("b").inc(2);
  reg.counter("a").inc(1);
  reg.gauge("g").set(2.0);
  reg.histogram("h", {1.0}).observe(0.5);
  EXPECT_EQ(reg.to_json(),
            "{\"counters\":{\"a\":1,\"b\":2},"
            "\"gauges\":{\"g\":{\"value\":2,\"max\":2}},"
            "\"histograms\":{\"h\":{\"count\":1,\"sum\":0.5,\"min\":0.5,"
            "\"max\":0.5,\"buckets\":[{\"le\":1,\"count\":1},"
            "{\"le\":\"inf\",\"count\":0}]}}}");
}

TEST(MetricsSnapshot, JsonIsDeterministicAcrossInsertionOrder) {
  MetricsRegistry forward;
  forward.counter("a").inc();
  forward.counter("b").inc();
  MetricsRegistry backward;
  backward.counter("b").inc();
  backward.counter("a").inc();
  EXPECT_EQ(forward.to_json(), backward.to_json());
}

}  // namespace
}  // namespace tlc::obs
