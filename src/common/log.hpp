// Minimal leveled logger.
//
// The library itself is silent at default level; simulations and benches
// raise the level for progress output. Logging is never on a packet fast
// path.
//
// Two pluggable hooks keep log lines usable inside a simulation:
//   * set_log_sink routes formatted lines somewhere other than stderr
//     (test capture, a file, the structured trace);
//   * set_log_clock registers a simulated-time source (typically a
//     Scheduler's now()), after which every line is prefixed with the
//     simulated time so log output can be ordered against trace events.
#pragma once

#include <functional>
#include <sstream>
#include <string_view>

#include "common/units.hpp"

namespace tlc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Receives every emitted line, already prefixed with level (and simulated
/// time when a clock is registered). Pass nullptr to restore stderr.
using LogSinkFn = std::function<void(LogLevel, std::string_view line)>;
void set_log_sink(LogSinkFn sink);

/// Registers a simulated-time source; lines are prefixed "[t=12.345s]".
/// The callable must stay valid until cleared. Pass nullptr to clear
/// (callers owning the clock — e.g. anything holding a Scheduler — must
/// clear before the clock dies).
using LogClockFn = std::function<TimePoint()>;
void set_log_clock(LogClockFn clock);

namespace detail {
void log_line(LogLevel level, std::string_view message);
}

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  detail::log_line(level, oss.str());
}

template <typename... Args>
void log_debug(Args&&... args) {
  log(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  log(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace tlc
