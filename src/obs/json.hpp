// Canonical JSON string escaping shared by the trace sink, the metrics
// snapshot, and the span layer.
//
// Escapes exactly what RFC 8259 requires — quote, backslash, and every
// control byte below 0x20 (common ones as the two-character forms, the rest
// as \u00XX) — and nothing else, so the output is both valid JSON and
// byte-deterministic for a given input.
#pragma once

#include <string>
#include <string_view>

namespace tlc::obs {

/// Appends `s` to `*out` as a quoted, escaped JSON string literal.
void append_json_string(std::string* out, std::string_view s);

/// The quoted, escaped literal as a fresh string.
[[nodiscard]] std::string json_string(std::string_view s);

/// Deterministic double formatting: integral values without a fractional
/// part, everything else with enough digits to round-trip.
[[nodiscard]] std::string format_json_double(double v);

}  // namespace tlc::obs
