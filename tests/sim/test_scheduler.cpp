#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tlc::sim {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

TEST(Scheduler, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), kTimeZero);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, DispatchesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(kTimeZero + seconds{3}, [&] { order.push_back(3); });
  s.schedule_at(kTimeZero + seconds{1}, [&] { order.push_back(1); });
  s.schedule_at(kTimeZero + seconds{2}, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), kTimeZero + seconds{3});
}

TEST(Scheduler, TiesBreakFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(kTimeZero + seconds{1}, [&, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  TimePoint fired = kTimeZero;
  s.schedule_after(seconds{5}, [&] {
    s.schedule_after(seconds{2}, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, kTimeZero + seconds{7});
}

TEST(Scheduler, PastSchedulingThrows) {
  Scheduler s;
  s.schedule_at(kTimeZero + seconds{10}, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(kTimeZero + seconds{5}, [] {}),
               std::invalid_argument);
  EXPECT_THROW(s.schedule_after(seconds{-1}, [] {}), std::invalid_argument);
}

TEST(Scheduler, CancelPreventsDispatch) {
  Scheduler s;
  bool fired = false;
  const EventId id = s.schedule_after(seconds{1}, [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelOneOfMany) {
  Scheduler s;
  int count = 0;
  s.schedule_after(seconds{1}, [&] { ++count; });
  const EventId id = s.schedule_after(seconds{2}, [&] { ++count; });
  s.schedule_after(seconds{3}, [&] { ++count; });
  s.cancel(id);
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, CancelUnknownIsNoop) {
  Scheduler s;
  s.cancel(9999);
  bool fired = false;
  s.schedule_after(seconds{1}, [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  int count = 0;
  s.schedule_after(seconds{1}, [&] { ++count; });
  s.schedule_after(seconds{5}, [&] { ++count; });
  const auto dispatched = s.run_until(kTimeZero + seconds{3});
  EXPECT_EQ(dispatched, 1u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), kTimeZero + seconds{3});  // advanced to deadline
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Scheduler, RunUntilThenContinue) {
  Scheduler s;
  int count = 0;
  s.schedule_after(seconds{10}, [&] { ++count; });
  s.run_until(kTimeZero + seconds{5});
  EXPECT_EQ(count, 0);
  s.run();
  EXPECT_EQ(count, 1);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_after(milliseconds{1}, recurse);
  };
  s.schedule_after(milliseconds{1}, recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), kTimeZero + milliseconds{100});
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.schedule_after(seconds{1}, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, RunReturnsDispatchCount) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_after(seconds{i + 1}, [] {});
  EXPECT_EQ(s.run(), 7u);
}

TEST(Scheduler, SameTimeAsNowIsAllowed) {
  Scheduler s;
  bool inner = false;
  s.schedule_after(seconds{1}, [&] {
    s.schedule_after(Duration::zero(), [&] { inner = true; });
  });
  s.run();
  EXPECT_TRUE(inner);
}

TEST(Scheduler, LifetimeStats) {
  Scheduler s;
  const EventId a = s.schedule_after(seconds{1}, [] {});
  s.schedule_after(seconds{2}, [] {});
  s.schedule_after(seconds{3}, [] {});
  EXPECT_EQ(s.events_scheduled(), 3u);
  EXPECT_EQ(s.max_queue_depth(), 3u);
  s.cancel(a);
  s.cancel(a);  // double-cancel counts once
  EXPECT_EQ(s.events_cancelled(), 1u);
  s.run();
  EXPECT_EQ(s.events_dispatched(), 2u);  // cancelled event not dispatched
  EXPECT_EQ(s.max_queue_depth(), 3u);
}

TEST(Scheduler, CancelledBacklogStaysBounded) {
  // Cancel-after-fire ids must not accumulate forever: the cancelled set
  // is compacted against the event queue whenever it outgrows it.
  Scheduler s;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(s.schedule_after(seconds{1}, [] {}));
  }
  for (const EventId id : ids) s.cancel(id);
  s.run();
  EXPECT_EQ(s.events_dispatched(), 0u);
  EXPECT_EQ(s.cancelled_backlog(), 0u);  // erased as the queue drained
  // Cancelling ids that fired (or never existed) long ago compacts against
  // the now-empty queue instead of accumulating.
  for (const EventId id : ids) s.cancel(id);
  EXPECT_LE(s.cancelled_backlog(), 1u);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, ObservabilityCountersTrackActivity) {
  obs::Obs obs;
  Scheduler s;
  s.set_observability(&obs);
  const EventId a = s.schedule_after(seconds{1}, [] {});
  s.schedule_after(seconds{2}, [] {});
  s.cancel(a);
  s.run();
  const auto snap = obs.metrics.snapshot();
  EXPECT_EQ(snap.counter_or_zero("sim.sched.scheduled"), 2u);
  EXPECT_EQ(snap.counter_or_zero("sim.sched.cancelled"), 1u);
  EXPECT_EQ(snap.counter_or_zero("sim.sched.dispatched"), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("sim.sched.queue_depth").max, 2.0);
}

}  // namespace
}  // namespace tlc::sim
