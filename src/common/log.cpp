#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace tlc {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

namespace detail {

void log_line(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[tlc %s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace detail
}  // namespace tlc
