#include "monitor/rrc_monitor.hpp"

#include <gtest/gtest.h>

namespace tlc::monitor {
namespace {

using std::chrono::seconds;

charging::DataPlan plan_300s() {
  charging::DataPlan plan;
  plan.cycle_length = seconds{300};
  return plan;
}

epc::CounterCheckReport report(std::uint64_t dl, std::uint64_t ul,
                               std::int64_t at_s) {
  return epc::CounterCheckReport{dl, ul, kTimeZero + seconds{at_s}};
}

TEST(RrcMonitor, FirstReportAttributesFromEpoch) {
  RrcDownlinkMonitor mon{plan_300s(), sim::NodeClock{}};
  mon.on_counter_check(report(1000, 100, 290));
  // Midpoint of [0, 290] = 145 s → cycle 0.
  EXPECT_EQ(mon.downlink_usage(0), Bytes{1000});
  EXPECT_EQ(mon.uplink_usage(0), Bytes{100});
}

TEST(RrcMonitor, DeltaAttribution) {
  RrcDownlinkMonitor mon{plan_300s(), sim::NodeClock{}};
  mon.on_counter_check(report(1000, 0, 290));
  mon.on_counter_check(report(1600, 0, 590));
  // Second delta (600 B) covers [290, 590]; midpoint 440 s → cycle 1.
  EXPECT_EQ(mon.downlink_usage(0), Bytes{1000});
  EXPECT_EQ(mon.downlink_usage(1), Bytes{600});
}

TEST(RrcMonitor, ReportJustAfterBoundaryCreditsEndingCycle) {
  // The cycle-end check fires a few seconds into the next cycle (OFCS
  // jitter); the delta must still be credited to the cycle that ended.
  RrcDownlinkMonitor mon{plan_300s(), sim::NodeClock{}};
  mon.on_counter_check(report(500, 0, 303));
  EXPECT_EQ(mon.downlink_usage(0), Bytes{500});
  EXPECT_EQ(mon.downlink_usage(1), Bytes{0});
}

TEST(RrcMonitor, StraddlingIntervalMisattributes) {
  // A reporting interval genuinely spanning a boundary attributes the
  // whole delta to one cycle — the Fig. 18 error source.
  RrcDownlinkMonitor mon{plan_300s(), sim::NodeClock{}};
  mon.on_counter_check(report(100, 0, 200));
  mon.on_counter_check(report(400, 0, 500));
  // Midpoint of [200, 500] = 350 → everything lands in cycle 1, although
  // a third of the traffic may have been in cycle 0.
  EXPECT_EQ(mon.downlink_usage(0), Bytes{100});
  EXPECT_EQ(mon.downlink_usage(1), Bytes{300});
}

TEST(RrcMonitor, OperatorClockShiftsAttribution) {
  RrcDownlinkMonitor mon{plan_300s(), sim::NodeClock{seconds{200}, 0.0}};
  mon.on_counter_check(report(100, 0, 250));
  // Midpoint 125 s true + 200 s offset = 325 s local → cycle 1.
  EXPECT_EQ(mon.downlink_usage(1), Bytes{100});
}

TEST(RrcMonitor, NonMonotonicCounterGuard) {
  RrcDownlinkMonitor mon{plan_300s(), sim::NodeClock{}};
  mon.on_counter_check(report(1000, 0, 100));
  mon.on_counter_check(report(400, 0, 200));  // malformed: went backwards
  EXPECT_EQ(mon.downlink_usage(0), Bytes{1000});  // no underflow
  mon.on_counter_check(report(1200, 0, 280));
  EXPECT_EQ(mon.downlink_usage(0), Bytes{1200});
}

TEST(RrcMonitor, UnreportedCycleIsZero) {
  RrcDownlinkMonitor mon{plan_300s(), sim::NodeClock{}};
  EXPECT_EQ(mon.downlink_usage(7), Bytes{0});
}

TEST(RrcMonitor, CountsReports) {
  RrcDownlinkMonitor mon{plan_300s(), sim::NodeClock{}};
  mon.on_counter_check(report(1, 0, 1));
  mon.on_counter_check(report(2, 0, 2));
  EXPECT_EQ(mon.reports_received(), 2u);
}

TEST(RrcMonitor, DetachDelaysReportingButConservesTotal) {
  // Device detached at the cycle-0 boundary: no report until re-attach in
  // cycle 1. The data is late but never lost (counters are cumulative).
  RrcDownlinkMonitor mon{plan_300s(), sim::NodeClock{}};
  mon.on_counter_check(report(900, 0, 290));
  // Next report only at 450 s (after re-attach): delta covers 290–450.
  mon.on_counter_check(report(1500, 0, 450));
  const Bytes total = mon.downlink_usage(0) + mon.downlink_usage(1);
  EXPECT_EQ(total, Bytes{1500});
}

}  // namespace
}  // namespace tlc::monitor
