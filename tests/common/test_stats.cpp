#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tlc {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownSequence) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, NegativeValues) {
  OnlineStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
}

TEST(SampleSet, EmptyBehaviour) {
  SampleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1.0), 0.0);
  EXPECT_THROW((void)s.percentile(50), std::logic_error);
  EXPECT_THROW((void)s.min(), std::logic_error);
  EXPECT_THROW((void)s.max(), std::logic_error);
}

TEST(SampleSet, MeanMinMax) {
  SampleSet s;
  for (double v : {3.0, 1.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  for (double v : {0.0, 10.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(-5), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(120), 10.0);
}

TEST(SampleSet, PercentileLargerSet) {
  SampleSet s;
  for (int i = 0; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
}

TEST(SampleSet, CdfAt) {
  SampleSet s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(SampleSet, CdfPointsSpanRange) {
  SampleSet s;
  for (int i = 0; i < 50; ++i) s.add(static_cast<double>(i));
  const auto points = s.cdf_points(5);
  ASSERT_EQ(points.size(), 5u);
  EXPECT_DOUBLE_EQ(points.front().first, 0.0);
  EXPECT_DOUBLE_EQ(points.back().first, 49.0);
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].second, points[i - 1].second);  // monotone CDF
  }
}

TEST(SampleSet, CdfPointsDegenerate) {
  SampleSet s;
  EXPECT_TRUE(s.cdf_points(10).empty());
  s.add(1.0);
  EXPECT_TRUE(s.cdf_points(1).empty());  // needs ≥2 points
}

TEST(SampleSet, AddAfterQueryKeepsCorrectOrder) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  s.add(1.0);  // must re-sort lazily
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

class SampleSetPercentileSweep : public ::testing::TestWithParam<double> {};

TEST_P(SampleSetPercentileSweep, MonotoneInP) {
  SampleSet s;
  for (int i = 0; i < 1'000; ++i) s.add(static_cast<double>(i % 97));
  const double p = GetParam();
  EXPECT_LE(s.percentile(p), s.percentile(std::min(100.0, p + 10)));
}

INSTANTIATE_TEST_SUITE_P(Percentiles, SampleSetPercentileSweep,
                         ::testing::Values(0.0, 10.0, 25.0, 50.0, 75.0, 90.0,
                                           99.0));

}  // namespace
}  // namespace tlc
