// Figure 14 — "Charging gap in intermittent connectivity".
//
// Gap ratio vs the measured intermittent-disconnectivity ratio
// η = t_disconn / t_total for UDP webcam streaming, bucketed by η as in
// the paper's 5–15% x-axis. Legacy grows with η; TLC reduces the gap at
// every level.
#include <cstdio>

#include "common/format.hpp"

#include <map>

#include "exp/metrics.hpp"
#include "exp/sweep.hpp"

using namespace tlc;
using namespace tlc::exp;

int main(int argc, char** argv) {
  const SweepOptions sweep = sweep_options_from_cli(argc, argv);
  std::printf("## Figure 14: gap ratio vs intermittent disconnectivity "
              "(WebCam UDP)\n\n");

  std::vector<ScenarioConfig> configs;
  for (double dip_rate : {0.02, 0.04, 0.06, 0.08, 0.10, 0.12}) {
    for (std::uint64_t seed : {1, 2, 3, 4}) {
      ScenarioConfig cfg;
      cfg.app = AppKind::kWebcamUdp;
      cfg.dip_rate_per_s = dip_rate;
      cfg.cycles = 3;
      cfg.cycle_length = std::chrono::seconds{300};
      cfg.seed = seed * 37 + static_cast<std::uint64_t>(dip_rate * 1000);
      configs.push_back(cfg);
    }
  }

  struct Bucket {
    OnlineStats legacy, random, optimal;
  };
  std::map<int, Bucket> buckets;  // key: round(η in %)

  // Aggregation stays in submission order, so bucket contents (and the
  // printed table) are identical to the serial run.
  for (const ScenarioResult& result : run_scenarios(configs, sweep)) {
    for (const auto& c : result.cycles) {
      const int eta_pct =
          static_cast<int>(std::lround(c.disconnect_ratio * 100.0));
      if (eta_pct < 1) continue;
      Bucket& b = buckets[eta_pct];
      b.legacy.add(c.legacy_gap().ratio);
      b.random.add(c.random_gap().ratio);
      b.optimal.add(c.optimal_gap().ratio);
    }
  }

  Table table{{"eta (%)", "cycles", "Legacy 4G/5G", "TLC-random",
               "TLC-optimal"}};
  for (const auto& [eta, b] : buckets) {
    table.add_row({std::to_string(eta),
                   std::to_string(b.legacy.count()),
                   format_percent(b.legacy.mean()),
                   format_percent(b.random.mean()),
                   format_percent(b.optimal.mean())});
  }
  table.print();
  std::printf("\npaper: legacy climbs toward ~20%% gap ratio at eta = 15%%; "
              "TLC-optimal stays lowest at every eta.\n");
  return 0;
}
