#include "tlc/timed_exchange.hpp"

namespace tlc::core {
namespace {

struct Exchange {
  sim::Scheduler& sched;
  ProtocolParty& initiator;
  ProtocolParty& responder;
  TimedExchangeConfig config;
  TimedExchangeResult result;
  TimePoint started;
  /// The exchange is half-duplex lockstep — exactly one message is ever in
  /// transit — so it parks here instead of being copied into each scheduler
  /// callback: the Message variant (~150 B of nested signature vectors)
  /// would blow the InlineCallback capture budget, and moving it once is
  /// cheaper than copying it twice anyway.
  Message in_flight;

  Duration crypto_for(const ProtocolParty& party) const {
    return &party == &initiator ? config.initiator_crypto
                                : config.responder_crypto;
  }

  /// `sender` produced `msg`; deliver it to the other side after the
  /// sender's processing time plus the propagation latency.
  void dispatch(ProtocolParty& sender, Message msg) {
    ++result.messages;
    result.crypto_time += crypto_for(sender);
    result.network_time += config.one_way_latency;
    ProtocolParty& receiver =
        &sender == &initiator ? responder : initiator;
    in_flight = std::move(msg);
    sched.schedule_after(
        crypto_for(sender) + config.one_way_latency, [this, &receiver] {
          // Receiver-side verification/decision time.
          result.crypto_time += crypto_for(receiver);
          sched.schedule_after(crypto_for(receiver), [this, &receiver] {
            const Message m = std::move(in_flight);
            std::optional<Message> reply = receiver.on_message(m);
            if (reply.has_value()) {
              dispatch(receiver, std::move(*reply));
            }
          });
        });
  }
};

}  // namespace

TimedExchangeResult run_timed_exchange(sim::Scheduler& sched,
                                       ProtocolParty& initiator,
                                       ProtocolParty& responder,
                                       const TimedExchangeConfig& config) {
  Exchange exchange{sched, initiator, responder, config, {}, sched.now(), {}};
  exchange.dispatch(initiator, initiator.start());
  sched.run();

  TimedExchangeResult result = exchange.result;
  result.completed = initiator.state() == ProtocolState::kDone &&
                     responder.state() == ProtocolState::kDone;
  result.elapsed = sched.now() - exchange.started;
  result.rounds = initiator.rounds();
  result.charged = initiator.charged();
  return result;
}

}  // namespace tlc::core
