// Hazard-pointer domain (serve/hazard.hpp): protect/retire/scan mechanics,
// bounded limbo, and — the reason the scheme exists — no use-after-free
// with racing readers and retirers over heap nodes (asan proves the
// negative).
#include "serve/hazard.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace tlc::serve {
namespace {

struct Payload {
  std::uint64_t value = 0;
  std::uint64_t check = 0;  // always value ^ kMask when alive
};
constexpr std::uint64_t kMask = 0xa5a5a5a5a5a5a5a5ULL;

Payload* make_payload(std::uint64_t v) {
  return new Payload{v, v ^ kMask};
}

TEST(HazardDomain, RetireWithoutCoverReclaimsOnScan) {
  std::atomic<int> freed{0};
  HazardDomain domain{2, [&freed](void* p) {
                        delete static_cast<Payload*>(p);
                        freed.fetch_add(1);
                      }};
  HazardSlot slot = domain.register_thread();
  domain.retire(slot, make_payload(1));
  domain.retire(slot, make_payload(2));
  EXPECT_EQ(domain.limbo_size(slot), 2u);
  EXPECT_EQ(domain.scan(slot), 2u);
  EXPECT_EQ(freed.load(), 2);
  EXPECT_EQ(domain.limbo_size(slot), 0u);
}

TEST(HazardDomain, ProtectedPointerSurvivesScanUntilCleared) {
  std::atomic<int> freed{0};
  HazardDomain domain{2, [&freed](void* p) {
                        delete static_cast<Payload*>(p);
                        freed.fetch_add(1);
                      }};
  HazardSlot reader = domain.register_thread();
  HazardSlot retirer = domain.register_thread();

  Payload* p = make_payload(7);
  domain.protect(reader, 0, p);
  domain.retire(retirer, p);
  EXPECT_EQ(domain.scan(retirer), 0u) << "covered pointer must not free";
  EXPECT_EQ(freed.load(), 0);
  EXPECT_EQ(p->value, 7u);  // still alive, still intact

  domain.clear(reader, 0);
  EXPECT_EQ(domain.scan(retirer), 1u);
  EXPECT_EQ(freed.load(), 1);
}

TEST(HazardDomain, LimboStaysBoundedUnderBulkRetire) {
  std::atomic<int> freed{0};
  HazardDomain domain{4, [&freed](void* p) {
                        delete static_cast<Payload*>(p);
                        freed.fetch_add(1);
                      }};
  HazardSlot slot = domain.register_thread();
  const std::size_t threshold = domain.retire_threshold();
  for (int i = 0; i < 1000; ++i) {
    domain.retire(slot, make_payload(static_cast<std::uint64_t>(i)));
    // The automatic scan at the threshold keeps limbo bounded; nothing is
    // covered, so it always empties.
    EXPECT_LT(domain.limbo_size(slot), threshold);
  }
  domain.scan(slot);
  EXPECT_EQ(freed.load(), 1000);
}

TEST(HazardDomain, SlotReleaseReclaimsLeftoverLimbo) {
  std::atomic<int> freed{0};
  HazardDomain domain{2, [&freed](void* p) {
                        delete static_cast<Payload*>(p);
                        freed.fetch_add(1);
                      }};
  {
    HazardSlot slot = domain.register_thread();
    domain.retire(slot, make_payload(1));
    domain.retire(slot, make_payload(2));
  }  // slot destructor scans its limbo and releases the row
  EXPECT_EQ(freed.load(), 2);
  // The row is reusable afterwards.
  HazardSlot again = domain.register_thread();
  EXPECT_TRUE(again.valid());
}

// The core reclamation-safety property, run under asan in CI: readers
// dereference shared nodes ONLY while a hazard covers them, a writer keeps
// swapping and retiring nodes, and no read ever touches freed memory. The
// `check` word would also trip the EXPECT if a node were recycled mid-read.
TEST(HazardDomain, RacingReadersAndRetirersNoUseAfterFree) {
  constexpr int kReaders = 3;
  constexpr int kSwaps = 20'000;
  std::atomic<std::uint64_t> freed{0};
  HazardDomain domain{kReaders + 1, [&freed](void* p) {
                        delete static_cast<Payload*>(p);
                        freed.fetch_add(1);
                      }};
  std::atomic<Payload*> shared{make_payload(0)};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&domain, &shared, &stop] {
      HazardSlot slot = domain.register_thread();
      while (!stop.load(std::memory_order_acquire)) {
        // Protect-then-revalidate: publish the hazard, confirm the shared
        // pointer did not move, only then dereference.
        Payload* p = shared.load(std::memory_order_acquire);
        domain.protect(slot, 0, p);
        if (shared.load(std::memory_order_acquire) != p) continue;
        ASSERT_EQ(p->check, p->value ^ kMask);
        domain.clear(slot, 0);
      }
    });
  }

  {
    HazardSlot writer = domain.register_thread();
    for (std::uint64_t i = 1; i <= kSwaps; ++i) {
      Payload* fresh = make_payload(i);
      Payload* old = shared.exchange(fresh, std::memory_order_acq_rel);
      domain.retire(writer, old);
    }
    stop.store(true, std::memory_order_release);
    for (std::thread& t : readers) t.join();
  }  // writer slot destructor scans; readers already deregistered

  // Everything except the final shared payload has been handed back.
  delete shared.load();
  EXPECT_EQ(freed.load() + 1, static_cast<std::uint64_t>(kSwaps) + 1);
  EXPECT_EQ(domain.reclaimed(), freed.load());
}

}  // namespace
}  // namespace tlc::serve
