// Transport frame for TLC control-plane messages in transit.
//
// Signed protocol messages (CDR/CDA/PoC) must stay byte-identical to what
// was signed, so per-hop metadata — the causal trace context and the
// retransmission attempt — cannot live inside them. A Frame wraps the
// encoded message for the wire: a fixed header carrying trace/span IDs
// plus the length-prefixed payload. Stripping the frame returns the exact
// signed bytes.
//
//   magic u32 | version u8 | attempt u8 | trace u64 | span u64 | payload
#pragma once

#include <cstdint>
#include <span>

#include "common/hex.hpp"

namespace tlc::wire {

/// Per-hop metadata; never covered by any signature.
struct FrameHeader {
  std::uint64_t trace_id = 0;  // 0 = untraced
  std::uint64_t span_id = 0;
  std::uint8_t attempt = 0;  // retransmission counter, 0 = first send

  friend bool operator==(const FrameHeader&, const FrameHeader&) = default;
};

struct Frame {
  FrameHeader header;
  ByteVec payload;  // the encoded (signed) protocol message
};

inline constexpr std::uint32_t kFrameMagic = 0x544C4346;  // "TLCF"
inline constexpr std::uint8_t kFrameVersion = 1;
/// Fixed wire overhead a frame adds on top of its payload:
/// magic + version + attempt + trace + span + payload length prefix.
inline constexpr std::size_t kFrameOverhead = 4 + 1 + 1 + 8 + 8 + 4;

[[nodiscard]] ByteVec encode_frame(const FrameHeader& header,
                                   std::span<const std::uint8_t> payload);

/// Throws DecodeError on bad magic, unknown version, or truncation.
[[nodiscard]] Frame decode_frame(std::span<const std::uint8_t> data);

}  // namespace tlc::wire
