// Flat-combining receipt store: the mutex-coordinated twin of MpmcQueue.
//
// Flat combining (Hendler et al., SPAA'10) trades lock-freedom for cache
// locality: instead of every thread CASing on shared head/tail words, each
// thread publishes its operation in a per-thread record, and whichever
// thread wins a try_lock becomes the *combiner* — it walks every
// publication record and applies all pending operations to a plain ring
// buffer in one cache-hot pass. Threads whose operation was combined for
// them never touch the ring at all.
//
// Under heavy multi-producer contention this can beat CAS loops (one
// thread streams through a private ring instead of N threads invalidating
// each other's cache lines); under low contention the lock round-trip
// costs more than an uncontended CAS. bench_serve measures both; the
// TLC_SERVE_FLAT_COMBINING CMake option selects which one backs
// serve::ReceiptStore (see store.hpp).
//
// API-compatible with MpmcQueue<T>: Handle / register_thread /
// try_enqueue / try_dequeue / approx_size / empty_quiescent / capacity.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <type_traits>
#include <vector>

#include "common/hot.hpp"

namespace tlc::serve {

template <typename T>
class FcQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "values are copied through publication records");

 public:
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& other) noexcept
        : queue_(other.queue_), index_(other.index_) {
      other.queue_ = nullptr;
    }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        release();
        queue_ = other.queue_;
        index_ = other.index_;
        other.queue_ = nullptr;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { release(); }

    [[nodiscard]] bool valid() const { return queue_ != nullptr; }

   private:
    friend class FcQueue;
    Handle(FcQueue* queue, std::size_t index)
        : queue_(queue), index_(index) {}
    void release() {
      if (queue_ != nullptr) {
        queue_->records_[index_].claimed.store(false,
                                               std::memory_order_release);
        queue_ = nullptr;
      }
    }

    FcQueue* queue_ = nullptr;
    std::size_t index_ = 0;
  };

  FcQueue(std::size_t capacity, std::size_t max_threads)
      : capacity_(capacity == 0 ? 1 : capacity),
        ring_(capacity_ + 1),
        records_(max_threads == 0 ? 1 : max_threads) {}
  FcQueue(const FcQueue&) = delete;
  FcQueue& operator=(const FcQueue&) = delete;

  [[nodiscard]] Handle register_thread() {
    for (std::size_t i = 0; i < records_.size(); ++i) {
      bool expected = false;
      if (records_[i].claimed.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        return Handle{this, i};
      }
    }
    assert(false && "FcQueue: more threads than max_threads registered");
    return Handle{};
  }

  /// False when `capacity` records are in flight (backpressure).
  TLC_HOT bool try_enqueue(const Handle& h, const T& v) {
    Record& rec = records_[h.index_];
    rec.value = v;
    rec.ok = false;
    rec.op.store(kOpEnqueue, std::memory_order_release);
    run_or_wait(rec);
    return rec.ok;
  }

  /// False when the queue is empty.
  TLC_HOT bool try_dequeue(const Handle& h, T* out) {
    Record& rec = records_[h.index_];
    rec.ok = false;
    rec.op.store(kOpDequeue, std::memory_order_release);
    run_or_wait(rec);
    if (!rec.ok) return false;
    *out = rec.value;
    return true;
  }

  [[nodiscard]] std::size_t approx_size() const {
    return depth_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool empty_quiescent() const { return approx_size() == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  static constexpr std::uint32_t kOpNone = 0;
  static constexpr std::uint32_t kOpEnqueue = 1;
  static constexpr std::uint32_t kOpDequeue = 2;

  struct alignas(64) Record {
    std::atomic<bool> claimed{false};
    /// kOp*: written by the owner (release), consumed by the combiner,
    /// reset to kOpNone (release) when the result fields are ready.
    std::atomic<std::uint32_t> op{kOpNone};
    T value{};
    bool ok = false;
  };

  /// Publication protocol: after posting an op, either win the combiner
  /// lock and service everyone (including ourselves), or spin until some
  /// other combiner services us. A thread whose op is still pending when
  /// it wins the lock services it in its own combine pass, so no op is
  /// ever stranded.
  void run_or_wait(Record& rec) {
    while (rec.op.load(std::memory_order_acquire) != kOpNone) {
      if (lock_.try_lock()) {
        combine();
        lock_.unlock();
      }
    }
  }

  /// Called with lock_ held: apply every pending publication record to the
  /// ring in record order.
  void combine() {
    for (Record& rec : records_) {
      const std::uint32_t op = rec.op.load(std::memory_order_acquire);
      if (op == kOpEnqueue) {
        const std::size_t next = (tail_ + 1) % ring_.size();
        if (next != head_) {
          ring_[tail_] = rec.value;
          tail_ = next;
          rec.ok = true;
          depth_.fetch_add(1, std::memory_order_relaxed);
        }
        rec.op.store(kOpNone, std::memory_order_release);
      } else if (op == kOpDequeue) {
        if (head_ != tail_) {
          rec.value = ring_[head_];
          head_ = (head_ + 1) % ring_.size();
          rec.ok = true;
          depth_.fetch_sub(1, std::memory_order_relaxed);
        }
        rec.op.store(kOpNone, std::memory_order_release);
      }
    }
  }

  std::size_t capacity_;
  std::vector<T> ring_;  // one-slot-open ring: head_ == tail_ means empty
  std::vector<Record> records_;
  std::mutex lock_;
  std::size_t head_ = 0;  // combiner-only
  std::size_t tail_ = 0;  // combiner-only
  std::atomic<std::size_t> depth_{0};
};

}  // namespace tlc::serve
