#include "net/transport.hpp"

#include <stdexcept>
#include <utility>

namespace tlc::net {

ArqSender::ArqSender(sim::Scheduler& sched, Config config, SendFn send,
                     GiveUpFn give_up)
    : sched_(sched),
      config_(config),
      send_(std::move(send)),
      give_up_(std::move(give_up)) {
  if (!send_) throw std::invalid_argument{"ArqSender: send callback required"};
}

void ArqSender::send_frame(Packet packet) {
  const std::uint64_t seq = packet.app_seq;
  if (pending_.contains(seq)) {
    throw std::logic_error{"ArqSender::send_frame: duplicate app_seq"};
  }
  Pending& p = pending_[seq];
  p.packet = std::move(packet);
  transmit(seq);
}

void ArqSender::transmit(std::uint64_t app_seq) {
  auto it = pending_.find(app_seq);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  ++p.attempts;
  ++transmissions_;
  if (p.attempts > 1) {
    ++retransmissions_;
  }
  Packet copy = p.packet;
  copy.is_retransmission = p.attempts > 1;
  // Arm the timer before handing the packet out: send_ may deliver an ack
  // synchronously, and on_ack erases this pending_ entry — `p` must not be
  // touched after the callback. The deadline is identical either way (the
  // sim clock cannot advance inside the callback), and on_ack cancels the
  // timer it finds armed.
  p.timer = sched_.schedule_after(config_.rto,
                                  [this, app_seq] { on_timeout(app_seq); });
  send_(std::move(copy));
}

void ArqSender::on_timeout(std::uint64_t app_seq) {
  auto it = pending_.find(app_seq);
  if (it == pending_.end()) return;
  if (it->second.attempts > config_.max_retries) {
    ++abandoned_;
    pending_.erase(it);
    if (give_up_) give_up_(app_seq);
    return;
  }
  transmit(app_seq);
}

void ArqSender::on_ack(std::uint64_t app_seq) {
  auto it = pending_.find(app_seq);
  if (it == pending_.end()) return;  // late/duplicate ack
  sched_.cancel(it->second.timer);
  pending_.erase(it);
}

}  // namespace tlc::net
