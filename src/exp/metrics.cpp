#include "exp/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace tlc::exp {

std::string_view to_string(Scheme scheme) {
  switch (scheme) {
    case Scheme::kLegacy:
      return "Legacy 4G/5G";
    case Scheme::kTlcRandom:
      return "TLC-random";
    case Scheme::kTlcOptimal:
      return "TLC-optimal";
  }
  return "?";
}

GapSamples collect_gaps(const std::vector<ScenarioResult>& results,
                        Scheme scheme) {
  GapSamples out;
  for (const auto& result : results) {
    for (const auto& cycle : result.cycles) {
      charging::GapMetrics gap;
      switch (scheme) {
        case Scheme::kLegacy:
          gap = cycle.legacy_gap();
          break;
        case Scheme::kTlcRandom:
          gap = cycle.random_gap();
          break;
        case Scheme::kTlcOptimal:
          gap = cycle.optimal_gap();
          break;
      }
      out.mb_per_hr.add(result.to_mb_per_hr(gap.absolute_bytes));
      out.ratio.add(gap.ratio);
    }
  }
  return out;
}

SampleSet collect_gap_reduction(const std::vector<ScenarioResult>& results) {
  SampleSet out;
  for (const auto& result : results) {
    for (const auto& cycle : result.cycles) {
      const double legacy = cycle.legacy_gap().absolute_bytes;
      const double tlc = cycle.optimal_gap().absolute_bytes;
      if (legacy <= 0.0) continue;
      out.add(std::clamp((legacy - tlc) / legacy, -1.0, 1.0));
    }
  }
  return out;
}

SampleSet collect_rounds(const std::vector<ScenarioResult>& results,
                         Scheme scheme) {
  SampleSet out;
  for (const auto& result : results) {
    for (const auto& cycle : result.cycles) {
      switch (scheme) {
        case Scheme::kLegacy:
          out.add(0.0);
          break;
        case Scheme::kTlcRandom:
          out.add(static_cast<double>(cycle.random.rounds));
          break;
        case Scheme::kTlcOptimal:
          out.add(static_cast<double>(cycle.optimal.rounds));
          break;
      }
    }
  }
  return out;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      std::printf("%-*s  ", static_cast<int>(widths[i]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

void print_cdf(const std::string& caption, const SampleSet& samples,
               std::size_t points) {
  std::printf("# CDF: %s (%zu samples)\n", caption.c_str(), samples.count());
  if (samples.empty()) {
    std::printf("# (no samples)\n");
    return;
  }
  for (const auto& [value, fraction] : samples.cdf_points(points)) {
    std::printf("%12.4f  %6.2f%%\n", value, fraction * 100.0);
  }
}

}  // namespace tlc::exp
