// Seeded layering violation: the simulation core must not depend on the
// protocol layer. Lexed by the lint tests, never compiled.
#include "common/units.hpp"
#include "sim/scheduler.hpp"
#include "tlc/protocol.hpp"

namespace tlc::sim {}
