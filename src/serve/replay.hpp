// Fleet replay through the live pipeline — the batch-equivalence driver.
//
// run_replay() runs the SAME fleet scenario exp::run_fleet() runs, but
// through the online serving path: producer threads walk cell-aligned
// device ranges cycle-major, generate every burst and settlement from the
// DeviceFleet's counter-based streams, and submit one ExchangeRecord per
// (device, cycle) — plus one kCellReport per (cell, cycle) — into a
// ServePipeline whose consumers re-derive and accept each bill.
//
// Because every draw a device makes is a pure function of (seed, device,
// counter) — never of event order — and every accumulator the pipeline
// keeps is a commutative sum (or a (cycle, cell)-sorted fold, for the OFCS
// chain), the drained totals are byte-identical to the batch run's
// FleetResult for ANY producer/consumer count, including 1/1 (the
// serial ≡ concurrent determinism test) and to the sharded batch runner
// (the tlc_serve cross-check). Tie-breaking matches the batch scheduler:
// at a cycle boundary the settlement runs before any burst stamped at the
// same instant, so a burst landing exactly on the boundary belongs to the
// next cycle.
#pragma once

#include <cstddef>
#include <cstdint>

#include "epc/fleet.hpp"
#include "serve/pipeline.hpp"

namespace tlc::serve {

struct ReplayConfig {
  std::size_t devices = 100'000;
  std::uint32_t devices_per_cell = 200;
  std::uint32_t cycles = 4;
  Duration cycle_length = std::chrono::seconds{1};
  epc::FleetTrafficParams traffic;
  double loss_weight = 0.5;
  std::uint64_t seed = 42;

  /// Serving topology. Producers partition the fleet on cell boundaries
  /// (like batch shards); results are identical for any combination.
  std::size_t producers = 2;
  std::size_t consumers = 2;
  std::size_t store_capacity = 4096;
  /// Optional time backend for settle-latency accounting; results are
  /// stamp-independent either way.
  const sim::ClockSource* clock = nullptr;
};

struct ReplayResult {
  std::uint64_t devices = 0;
  std::uint32_t cells = 0;
  /// Drained pipeline accumulation: totals, per-cycle rows, gap causes,
  /// OFCS chain, flagged count, settle latency.
  PipelineStats stats;
  /// Fleet state digest after the replay settled every device — compares
  /// against exp::FleetResult::digest.
  std::uint64_t fleet_digest = 0;
};

[[nodiscard]] ReplayResult run_replay(const ReplayConfig& config);

}  // namespace tlc::serve
