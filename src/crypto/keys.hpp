// RSA key management for Proof-of-Charging signatures.
//
// The paper's prototype uses java.security RSA-1024 (§6); 1024-bit keys are
// what give the paper its 199/398/796-byte message sizes, so RSA-1024 is the
// size-faithful default here. RSA-2048 is available for deployments that
// want a modern security margin (the bench quantifies the cost).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/hex.hpp"

namespace tlc::crypto {

enum class KeyStrength : int {
  kRsa1024 = 1024,  // paper-faithful sizes
  kRsa2048 = 2048,  // modern margin
};

/// Public key: verify-only handle, cheap to copy (shared EVP_PKEY).
class PublicKey {
 public:
  PublicKey() = default;

  /// DER (SubjectPublicKeyInfo) round-trip for transport/storage.
  [[nodiscard]] ByteVec to_der() const;
  [[nodiscard]] static PublicKey from_der(std::span<const std::uint8_t> der);

  /// SHA-256 of the DER encoding — stable identifier for a party.
  [[nodiscard]] std::string fingerprint() const;

  [[nodiscard]] bool valid() const { return pkey_ != nullptr; }
  [[nodiscard]] void* handle() const { return pkey_.get(); }
  /// Shared ownership of the EVP_PKEY — the signer's per-session context
  /// cache holds this so a cached verify context never outlives its key.
  [[nodiscard]] std::shared_ptr<void> shared_handle() const { return pkey_; }

  friend bool operator==(const PublicKey& a, const PublicKey& b);

 private:
  friend class KeyPair;
  explicit PublicKey(std::shared_ptr<void> pkey) : pkey_(std::move(pkey)) {}
  std::shared_ptr<void> pkey_;  // EVP_PKEY
};

/// Private+public key pair owned by one party (edge vendor or operator).
class KeyPair {
 public:
  KeyPair() = default;

  /// Generates a fresh RSA key pair. Deterministic tests should cache pairs
  /// rather than seed OpenSSL's RNG.
  [[nodiscard]] static KeyPair generate(KeyStrength strength);

  /// The verify-only handle, derived ONCE at generation: the OpenSSL 3
  /// DER re-parse that strips the private part costs ~0.7 ms, far more
  /// than an RSA-1024 verify, so deriving per call would dominate every
  /// path that builds a verifier or party.
  [[nodiscard]] const PublicKey& public_key() const;
  [[nodiscard]] bool valid() const { return pkey_ != nullptr; }
  [[nodiscard]] void* handle() const { return pkey_.get(); }
  /// Shared ownership of the EVP_PKEY (see PublicKey::shared_handle).
  [[nodiscard]] std::shared_ptr<void> shared_handle() const { return pkey_; }
  [[nodiscard]] KeyStrength strength() const { return strength_; }

  /// Signature size in bytes (= modulus size: 128 for RSA-1024). Cached at
  /// generation — the signing hot path sizes a buffer per signature and
  /// EVP_PKEY_get_size walks the provider parameters every call.
  [[nodiscard]] std::size_t signature_size() const { return sig_size_; }

 private:
  std::shared_ptr<void> pkey_;  // EVP_PKEY with private part
  PublicKey public_;            // cached verify-only handle
  KeyStrength strength_ = KeyStrength::kRsa1024;
  std::size_t sig_size_ = 0;
};

}  // namespace tlc::crypto
