// Durable Proof-of-Charging archive.
//
// Both parties "locally store [the PoC] as a charging receipt" (§5.3.2);
// disputes may surface months later (the lawsuits of §1), so receipts need
// a durable, audit-friendly store. Format: a length-prefixed sequence of
// encoded PoCs with a magic header — append-only, order-preserving, and
// auditable in one pass with a PublicVerifier.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <vector>

#include "tlc/messages.hpp"
#include "tlc/verifier.hpp"

namespace tlc::core {

class ReceiptStore {
 public:
  explicit ReceiptStore(std::filesystem::path path);

  /// Appends one receipt (creates the file with a header if absent).
  void append(const PocMsg& poc);

  /// Loads every stored receipt; throws std::runtime_error on a corrupt
  /// or foreign file.
  [[nodiscard]] std::vector<PocMsg> load_all() const;

  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

  struct AuditReport {
    std::uint64_t total = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::map<VerifyResult, std::uint64_t> by_result;
    Bytes total_verified_volume;
  };

  /// Verifies every stored receipt against `verifier` (Algorithm 2 per
  /// receipt; the verifier's replay cache catches duplicate receipts).
  [[nodiscard]] AuditReport audit(PublicVerifier& verifier) const;

 private:
  std::filesystem::path path_;
};

}  // namespace tlc::core
