// Replay driver (serve/replay.hpp): the online pipeline settles the SAME
// fleet scenario the batch runner settles — every total, every cycle row,
// the fleet digest and the OFCS chain compare equal — and the replay itself
// is deterministic across serving topologies (serial 1p/1c ≡ concurrent
// 4p/2c). This is the unit-scale version of the tlc_serve 100k cross-check.
#include "serve/replay.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "exp/fleet.hpp"

namespace tlc::serve {
namespace {

constexpr std::size_t kDevices = 2'000;
constexpr std::uint32_t kDevicesPerCell = 100;
constexpr std::uint32_t kCycles = 3;
constexpr std::uint64_t kSeed = 7;

ReplayConfig replay_config(std::size_t producers, std::size_t consumers) {
  ReplayConfig cfg;
  cfg.devices = kDevices;
  cfg.devices_per_cell = kDevicesPerCell;
  cfg.cycles = kCycles;
  cfg.seed = kSeed;
  cfg.producers = producers;
  cfg.consumers = consumers;
  cfg.store_capacity = 256;
  return cfg;
}

exp::FleetResult batch_result() {
  exp::FleetConfig cfg;
  cfg.devices = kDevices;
  cfg.devices_per_cell = kDevicesPerCell;
  cfg.shards = 2;
  cfg.cycles = kCycles;
  cfg.seed = kSeed;
  return exp::run_fleet(cfg);
}

TEST(ServeReplay, MatchesBatchFleetRunExactly) {
  const ReplayResult serve = run_replay(replay_config(2, 2));
  const exp::FleetResult batch = batch_result();

  EXPECT_EQ(serve.devices, batch.devices);
  EXPECT_EQ(serve.cells, batch.cells);

  const PipelineStats& s = serve.stats;
  // Conservation: one settlement per (device, cycle), one report per
  // (cell, cycle), nothing rejected.
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.ingested, s.settled);
  EXPECT_EQ(s.ingested,
            kDevices * kCycles + std::uint64_t{batch.cells} * kCycles);
  EXPECT_EQ(s.cell_reports, std::uint64_t{batch.cells} * kCycles);

  // Fleet-wide byte totals.
  EXPECT_EQ(s.charged_dl, batch.charged_dl);
  EXPECT_EQ(s.delivered_dl, batch.delivered_dl);
  EXPECT_EQ(s.gap_dl, batch.gap_dl);
  EXPECT_EQ(s.billed_legacy, batch.billed_legacy);
  EXPECT_EQ(s.billed_tlc, batch.billed_tlc);
  EXPECT_EQ(s.charged_ul, batch.charged_ul);

  // Per-cycle rows.
  ASSERT_EQ(s.cycle_rows.size(), batch.cycle_totals.size());
  for (std::size_t c = 0; c < s.cycle_rows.size(); ++c) {
    EXPECT_EQ(s.cycle_rows[c].charged_dl, batch.cycle_totals[c].charged_dl);
    EXPECT_EQ(s.cycle_rows[c].delivered_dl,
              batch.cycle_totals[c].delivered_dl);
    EXPECT_EQ(s.cycle_rows[c].gap_dl, batch.cycle_totals[c].gap_dl);
    EXPECT_EQ(s.cycle_rows[c].billed_legacy,
              batch.cycle_totals[c].billed_legacy);
    EXPECT_EQ(s.cycle_rows[c].billed_tlc, batch.cycle_totals[c].billed_tlc);
    EXPECT_EQ(s.cycle_rows[c].settled_devices, kDevices);
  }

  // Gap-cause taxonomy against the batch run's counters.
  EXPECT_EQ(s.gap_disconnect,
            batch.metrics.counter_or_zero("fleet.dropped_disconnect_bytes"));
  EXPECT_EQ(s.gap_radio,
            batch.metrics.counter_or_zero("fleet.dropped_radio_bytes"));
  EXPECT_EQ(s.gap_handover,
            batch.metrics.counter_or_zero("fleet.dropped_handover_bytes"));
  EXPECT_EQ(s.bursts, batch.metrics.counter_or_zero("fleet.bursts"));
  EXPECT_EQ(s.reconnects, batch.metrics.counter_or_zero("fleet.reconnects"));

  // The strongest checks: per-device settled-state digest and the
  // (cycle, cell)-ordered OFCS aggregator chain.
  EXPECT_EQ(serve.fleet_digest, batch.digest);
  EXPECT_EQ(s.ofcs_chain, batch.ofcs_chain);
  EXPECT_EQ(s.flagged_reports, batch.flagged_reports);
}

TEST(ServeReplay, SerialAndConcurrentTopologiesAreIdentical) {
  const ReplayResult serial = run_replay(replay_config(1, 1));
  const ReplayResult concurrent = run_replay(replay_config(4, 2));

  EXPECT_EQ(serial.devices, concurrent.devices);
  EXPECT_EQ(serial.cells, concurrent.cells);
  EXPECT_EQ(serial.fleet_digest, concurrent.fleet_digest);

  const PipelineStats& a = serial.stats;
  const PipelineStats& b = concurrent.stats;
  EXPECT_EQ(a.ingested, b.ingested);
  EXPECT_EQ(a.settled, b.settled);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.cell_reports, b.cell_reports);
  EXPECT_EQ(a.charged_dl, b.charged_dl);
  EXPECT_EQ(a.delivered_dl, b.delivered_dl);
  EXPECT_EQ(a.gap_dl, b.gap_dl);
  EXPECT_EQ(a.billed_legacy, b.billed_legacy);
  EXPECT_EQ(a.billed_tlc, b.billed_tlc);
  EXPECT_EQ(a.charged_ul, b.charged_ul);
  EXPECT_EQ(a.bursts, b.bursts);
  EXPECT_EQ(a.reconnects, b.reconnects);
  EXPECT_EQ(a.gap_disconnect, b.gap_disconnect);
  EXPECT_EQ(a.gap_radio, b.gap_radio);
  EXPECT_EQ(a.gap_handover, b.gap_handover);
  ASSERT_EQ(a.cycle_rows.size(), b.cycle_rows.size());
  for (std::size_t c = 0; c < a.cycle_rows.size(); ++c) {
    EXPECT_EQ(a.cycle_rows[c].charged_dl, b.cycle_rows[c].charged_dl);
    EXPECT_EQ(a.cycle_rows[c].billed_tlc, b.cycle_rows[c].billed_tlc);
    EXPECT_EQ(a.cycle_rows[c].settled_devices,
              b.cycle_rows[c].settled_devices);
  }
  EXPECT_EQ(a.ofcs_chain, b.ofcs_chain);
  EXPECT_EQ(a.flagged_reports, b.flagged_reports);
}

TEST(ServeReplay, ProducerCountClampsToCellCount) {
  // More producers than cells: the replay clamps instead of spawning idle
  // threads, and the result is still exact.
  ReplayConfig cfg = replay_config(64, 2);
  cfg.devices = 300;  // 3 cells
  cfg.devices_per_cell = 100;
  const ReplayResult serve = run_replay(cfg);
  EXPECT_EQ(serve.cells, 3u);
  EXPECT_EQ(serve.stats.rejected, 0u);
  EXPECT_EQ(serve.stats.ingested,
            std::uint64_t{300} * kCycles + 3u * kCycles);
}

}  // namespace
}  // namespace tlc::serve
