#include "exp/metrics.hpp"

#include <gtest/gtest.h>

namespace tlc::exp {
namespace {

ScenarioResult fake_result() {
  ScenarioResult r;
  r.config.cycle_length = std::chrono::seconds{3600};
  CycleOutcome c;
  c.truth = charging::GroundTruth{Bytes{1'000'000'000}, Bytes{900'000'000}};
  c.correct = Bytes{950'000'000};
  c.legacy = Bytes{900'000'000};  // 50 MB gap
  c.optimal.converged = true;
  c.optimal.charged = Bytes{949'000'000};  // 1 MB gap
  c.optimal.rounds = 1;
  c.random.converged = true;
  c.random.charged = Bytes{940'000'000};  // 10 MB gap
  c.random.rounds = 3;
  r.cycles.push_back(c);
  return r;
}

TEST(Metrics, CollectGapsPerScheme) {
  const std::vector<ScenarioResult> results{fake_result()};
  const GapSamples legacy = collect_gaps(results, Scheme::kLegacy);
  const GapSamples optimal = collect_gaps(results, Scheme::kTlcOptimal);
  const GapSamples random = collect_gaps(results, Scheme::kTlcRandom);
  ASSERT_EQ(legacy.mb_per_hr.count(), 1u);
  EXPECT_NEAR(legacy.mb_per_hr.mean(), 50.0, 1e-9);
  EXPECT_NEAR(optimal.mb_per_hr.mean(), 1.0, 1e-9);
  EXPECT_NEAR(random.mb_per_hr.mean(), 10.0, 1e-9);
  EXPECT_NEAR(legacy.ratio.mean(), 50.0 / 950.0, 1e-9);
}

TEST(Metrics, CollectGapReduction) {
  const std::vector<ScenarioResult> results{fake_result()};
  const SampleSet mu = collect_gap_reduction(results);
  ASSERT_EQ(mu.count(), 1u);
  EXPECT_NEAR(mu.mean(), (50.0 - 1.0) / 50.0, 1e-9);
}

TEST(Metrics, GapReductionSkipsZeroLegacyGap) {
  ScenarioResult r = fake_result();
  r.cycles[0].legacy = r.cycles[0].correct;  // no legacy gap
  const SampleSet mu = collect_gap_reduction({r});
  EXPECT_EQ(mu.count(), 0u);
}

TEST(Metrics, CollectRounds) {
  const std::vector<ScenarioResult> results{fake_result()};
  EXPECT_DOUBLE_EQ(collect_rounds(results, Scheme::kTlcOptimal).mean(), 1.0);
  EXPECT_DOUBLE_EQ(collect_rounds(results, Scheme::kTlcRandom).mean(), 3.0);
  EXPECT_DOUBLE_EQ(collect_rounds(results, Scheme::kLegacy).mean(), 0.0);
}

TEST(Metrics, SchemeNames) {
  EXPECT_EQ(to_string(Scheme::kLegacy), "Legacy 4G/5G");
  EXPECT_EQ(to_string(Scheme::kTlcRandom), "TLC-random");
  EXPECT_EQ(to_string(Scheme::kTlcOptimal), "TLC-optimal");
}

TEST(Metrics, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Metrics, TablePrintsWithoutCrashing) {
  Table t{{"app", "gap"}};
  t.add_row({"WebCam", "16.56"});
  t.add_row({"VRidge (long name to widen)", "384.49"});
  t.add_row({"short"});  // fewer cells than headers
  t.print();             // smoke: no crash, no throw
}

TEST(Metrics, PrintCdfHandlesEmpty) {
  SampleSet empty;
  print_cdf("empty", empty);  // must not throw
  SampleSet some;
  for (int i = 0; i < 10; ++i) some.add(i);
  print_cdf("some", some, 5);
}

}  // namespace
}  // namespace tlc::exp
