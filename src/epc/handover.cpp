#include "epc/handover.hpp"

#include <stdexcept>

namespace tlc::epc {

HandoverController::HandoverController(sim::Scheduler& sched, Config config,
                                       std::vector<BaseStation*> cells)
    : sched_(sched), config_(config), cells_(std::move(cells)) {
  if (cells_.size() < 2) {
    throw std::invalid_argument{"HandoverController: need >= 2 cells"};
  }
  for (std::size_t i = 1; i < cells_.size(); ++i) {
    cells_[i]->suspend(net::DropCause::kHandover);
  }
  cells_[0]->resume();
}

void HandoverController::start() {
  if (started_) return;
  started_ = true;
  // Self-rescheduling loop: each firing executes a handover and arms the
  // next one.
  struct Loop {
    HandoverController* self;
    void operator()() const {
      self->execute_handover();
      self->sched_.schedule_after(self->config_.period, Loop{self});
    }
  };
  sched_.schedule_after(config_.period, Loop{this});
}

void HandoverController::set_observability(obs::Obs* obs) {
  obs_ = obs;
  m_handovers_ =
      obs_ == nullptr ? nullptr : &obs_->metrics.counter("epc.handover.count");
}

void HandoverController::execute_handover() {
  ++handovers_;
  if (m_handovers_ != nullptr) m_handovers_->inc();
  const std::size_t target = (serving_index_ + 1) % cells_.size();
  TLC_TRACE_EVENT(obs_, "epc.handover", "handover", obs::TraceLevel::kInfo,
                  obs::field("from", static_cast<std::uint64_t>(serving_index_)),
                  obs::field("to", static_cast<std::uint64_t>(target)));

  // Source cell releases the device: buffered data is discarded (no X2
  // forwarding), and nothing flows until the target admits the device.
  cells_[serving_index_]->suspend(net::DropCause::kHandover);
  serving_index_ = target;

  // The target cell completes admission after the interruption window.
  sched_.schedule_after(config_.interruption, [this, target] {
    if (serving_index_ == target) {
      cells_[target]->resume();
    }
  });
}

void HandoverController::route_downlink(net::Packet packet) {
  cells_[serving_index_]->send_downlink(std::move(packet));
}

void HandoverController::route_uplink(net::Packet packet) {
  cells_[serving_index_]->send_uplink(std::move(packet));
}

}  // namespace tlc::epc
