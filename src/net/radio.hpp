// Radio channel model for one device's air interface.
//
// Reproduces the loss behaviour the paper measures on its Qualcomm small
// cell (Figs. 3, 4, 14):
//   * an AR(1) shadow-fading process around a configurable base RSS;
//   * Poisson-arriving deep fades ("intermittent connectivity", mean outage
//     1.93 s in Fig. 4) during which the device is disconnected;
//   * a loss-probability curve that is flat in good signal and ramps up as
//     RSS approaches the disconnect threshold;
//   * a constant baseline loss standing in for the residual app/transport
//     level losses the paper observes even at RSS ≥ −95 dBm (§3.2: 6.7–8.3%).
//
// The model advances in fixed slots and must be queried with monotonically
// non-decreasing times (both directions of one device share the instance).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "obs/obs.hpp"

namespace tlc::net {

struct RadioConfig {
  Dbm base_rss{-92.0};
  double shadow_sigma_db = 1.5;    // AR(1) innovation stddev
  double shadow_phi = 0.95;        // AR(1) memory
  double dip_rate_per_s = 0.0;     // Poisson rate of deep-fade onsets
  Duration dip_duration_mean = std::chrono::milliseconds{1930};
  Duration dip_duration_max = std::chrono::seconds{6};
  double dip_depth_db = 30.0;      // subtracted from RSS during a fade
  Dbm disconnect_threshold{-115.0};
  /// Extra loss applied even in perfect signal (application/transport-level
  /// residual loss observed by the paper at good RSS).
  double baseline_loss = 0.0;
  /// Loss ramps linearly from 0 at `loss_onset` down to `loss_at_threshold`
  /// at the disconnect threshold.
  Dbm loss_onset{-100.0};
  double loss_at_threshold = 0.35;
  Duration slot = std::chrono::milliseconds{10};
};

/// Channel state during one slot.
struct RadioState {
  Dbm rss{-140.0};
  bool connected = false;
  double loss_probability = 1.0;
};

class RadioModel {
 public:
  RadioModel(RadioConfig config, Rng rng);

  /// State at time `t`; `t` must be ≥ any previously queried time.
  [[nodiscard]] const RadioState& state_at(TimePoint t);

  /// Bernoulli loss draw for a transmission at time `t`.
  [[nodiscard]] bool transmission_lost(TimePoint t);

  /// Extra Bernoulli draw from the channel's RNG stream (used by the link
  /// for load-dependent congestion loss; keeps all randomness seeded).
  [[nodiscard]] bool draw(double probability) { return rng_.chance(probability); }

  /// Total disconnected time observed in [0, t_last_queried].
  [[nodiscard]] Duration disconnected_time() const {
    return disconnected_time_;
  }
  [[nodiscard]] TimePoint last_queried() const { return slot_end_; }

  [[nodiscard]] const RadioConfig& config() const { return config_; }

  /// Counter <prefix>.outages plus trace events outage_begin/outage_end
  /// (component <prefix>), stamped with the slot boundary time.
  void set_observability(obs::Obs* obs, std::string prefix);

 private:
  void advance_slot();

  RadioConfig config_;
  Rng rng_;
  RadioState state_;
  double shadow_db_ = 0.0;
  TimePoint slot_end_ = kTimeZero;
  std::optional<TimePoint> dip_until_;
  TimePoint next_dip_ = kTimeZero;
  Duration disconnected_time_ = Duration::zero();
  bool started_ = false;

  obs::Obs* obs_ = nullptr;
  std::string component_;
  obs::Counter* m_outages_ = nullptr;
};

}  // namespace tlc::net
