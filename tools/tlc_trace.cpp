// tlc_trace — offline analyzer for the testbed's JSONL trace.
//
// Reconstructs the causal span tree of every traced exchange (the wire
// settlement's UE↔BS↔gateway round trips) from a trace streamed by
// `tlc_lab --trace=...` (ScenarioConfig::trace_jsonl_path) and answers the
// questions a latency investigation starts with:
//
//   tlc_trace trace.jsonl                  per-exchange summary table
//   tlc_trace --timeline=<trace> t.jsonl   one exchange, event by event
//   tlc_trace --critical-path t.jsonl      where the time went (radio vs
//                                          queue vs crypto/protocol)
//   tlc_trace --stalls t.jsonl             lost attempts, unclosed spans
//   tlc_trace --folded t.jsonl             flamegraph folded stacks
//   tlc_trace --check t.jsonl              assert every exchange is fully
//                                          reconstructable (CI gate)
//
// Output is byte-deterministic for a given input file: every listing is
// ordered by (simulated time, emission seq) or sorted lexicographically.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

[[noreturn]] void usage(int code) {
  std::printf(
      "tlc_trace — causal trace analyzer for TLC testbed JSONL traces\n\n"
      "usage: tlc_trace [mode] <trace.jsonl | ->\n\n"
      "modes (default: per-exchange summary):\n"
      "  --timeline=<trace-hex>  chronological event/span timeline of one\n"
      "                          exchange (unique id prefix accepted)\n"
      "  --critical-path         per-exchange latency breakdown: msg\n"
      "                          in-flight vs queue vs radio vs backhaul\n"
      "                          vs protocol+crypto wait\n"
      "  --stalls                lost transmission attempts (unclosed msg\n"
      "                          spans) and warn/error events\n"
      "  --folded                flamegraph folded-stack output (self ns)\n"
      "  --check                 verify 100%% of exchanges reconstruct;\n"
      "                          exit 1 on any gap\n"
      "  --help                  this text\n");
  std::exit(code);
}

// ── minimal JSONL parsing ──────────────────────────────────────────────
// The trace writer emits flat objects: {"t_ns":..,"seq":..,"level":"..",
// "component":"..","event":"..",k:v...}. Values are strings, numbers or
// booleans; nothing is nested. The parser below accepts exactly that.

struct RawEvent {
  long long t_ns = 0;
  unsigned long long seq = 0;
  std::string level;
  std::string component;
  std::string event;
  // Remaining fields in emission order; values hold the decoded string for
  // quoted values and the raw token for numbers/booleans.
  std::vector<std::pair<std::string, std::string>> fields;

  [[nodiscard]] const std::string* field(std::string_view key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

struct LineParser {
  std::string_view s;
  std::size_t i = 0;
  bool failed = false;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  }

  bool consume(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    failed = true;
    return false;
  }

  // Decodes a JSON string (after the opening quote has been consumed).
  std::string parse_string_body() {
    std::string out;
    while (i < s.size()) {
      const char c = s[i++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (i >= s.size()) break;
      const char e = s[i++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (i + 4 > s.size()) {
            failed = true;
            return out;
          }
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s[i++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              failed = true;
              return out;
            }
          }
          // The writer only escapes control bytes (< 0x20), so a plain
          // Latin-1 style expansion round-trips everything it produces.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          failed = true;
          return out;
      }
    }
    failed = true;  // unterminated string
    return out;
  }

  // A non-string scalar: number, true, false, null.
  std::string parse_token() {
    skip_ws();
    const std::size_t start = i;
    while (i < s.size() && s[i] != ',' && s[i] != '}') ++i;
    std::size_t end = i;
    while (end > start && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
    if (end == start) failed = true;
    return std::string{s.substr(start, end - start)};
  }
};

bool parse_line(std::string_view line, RawEvent* out) {
  LineParser p{line};
  if (!p.consume('{')) return false;
  bool first = true;
  while (true) {
    p.skip_ws();
    if (p.i < p.s.size() && p.s[p.i] == '}') {
      ++p.i;
      break;
    }
    if (!first && !p.consume(',')) return false;
    first = false;
    if (!p.consume('"')) return false;
    const std::string key = p.parse_string_body();
    if (p.failed || !p.consume(':')) return false;
    p.skip_ws();
    std::string value;
    if (p.i < p.s.size() && p.s[p.i] == '"') {
      ++p.i;
      value = p.parse_string_body();
    } else {
      value = p.parse_token();
    }
    if (p.failed) return false;
    if (key == "t_ns") {
      out->t_ns = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "seq") {
      out->seq = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "level") {
      out->level = std::move(value);
    } else if (key == "component") {
      out->component = std::move(value);
    } else if (key == "event") {
      out->event = std::move(value);
    } else {
      out->fields.emplace_back(std::move(key), std::move(value));
    }
  }
  p.skip_ws();
  return !p.failed && p.i == p.s.size() && !out->event.empty();
}

// ── span & trace reconstruction ────────────────────────────────────────

struct Span {
  std::string trace;      // 16-hex trace id
  std::string id;         // 16-hex span id
  std::string parent;     // empty for roots
  std::string name;
  std::string component;
  long long begin_ns = 0;
  long long end_ns = -1;  // -1 = never closed (a lost attempt / stall)
  unsigned long long begin_seq = 0;
  std::vector<std::pair<std::string, std::string>> begin_fields;
  std::vector<std::pair<std::string, std::string>> end_fields;
  std::size_t parent_idx = kNone;
  std::vector<std::size_t> children;

  [[nodiscard]] bool closed() const { return end_ns >= 0; }
  [[nodiscard]] long long duration_ns() const {
    return closed() ? end_ns - begin_ns : -1;
  }
  [[nodiscard]] const std::string* begin_field(std::string_view key) const {
    for (const auto& [k, v] : begin_fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] const std::string* end_field(std::string_view key) const {
    for (const auto& [k, v] : end_fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

struct TraceTree {
  std::string id;
  std::vector<std::size_t> spans;   // indices into Model::spans, file order
  std::vector<std::size_t> events;  // tagged non-span events, file order
  std::size_t root = kNone;         // first parentless span
};

struct Model {
  std::vector<RawEvent> events;  // every parsed line, file order
  std::vector<Span> spans;
  std::vector<std::string> trace_order;  // first-appearance order
  std::map<std::string, TraceTree> traces;
  std::size_t parse_errors = 0;
  std::size_t orphan_ends = 0;  // span_end with no open matching begin
  std::size_t span_events = 0;

  TraceTree& trace_for(const std::string& id) {
    auto [it, inserted] = traces.try_emplace(id);
    if (inserted) {
      it->second.id = id;
      trace_order.push_back(id);
    }
    return it->second;
  }
};

Model build_model(std::istream& in) {
  Model m;
  // (trace|span) -> instance indices, file order. Fault-duplicated packets
  // can legitimately reuse a derived span id; each begin opens a new
  // instance and an end closes the oldest still-open one.
  std::map<std::string, std::vector<std::size_t>> instances;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    RawEvent ev;
    if (!parse_line(line, &ev)) {
      ++m.parse_errors;
      continue;
    }
    const std::size_t ev_idx = m.events.size();
    m.events.push_back(std::move(ev));
    const RawEvent& e = m.events.back();

    const std::string* trace = e.field("trace");
    if (e.event == "span_begin" || e.event == "span_end") {
      ++m.span_events;
      const std::string* span = e.field("span");
      if (trace == nullptr || span == nullptr) {
        ++m.parse_errors;
        continue;
      }
      const std::string key = *trace + "|" + *span;
      if (e.event == "span_begin") {
        Span s;
        s.trace = *trace;
        s.id = *span;
        if (const std::string* parent = e.field("parent")) s.parent = *parent;
        if (const std::string* name = e.field("name")) s.name = *name;
        s.component = e.component;
        s.begin_ns = e.t_ns;
        s.begin_seq = e.seq;
        for (const auto& [k, v] : e.fields) {
          if (k != "trace" && k != "span" && k != "parent" && k != "name") {
            s.begin_fields.emplace_back(k, v);
          }
        }
        const std::size_t idx = m.spans.size();
        instances[key].push_back(idx);
        m.spans.push_back(std::move(s));
        TraceTree& t = m.trace_for(*trace);
        t.spans.push_back(idx);
        if (t.root == kNone && m.spans[idx].parent.empty()) t.root = idx;
      } else {
        auto it = instances.find(key);
        Span* open = nullptr;
        if (it != instances.end()) {
          for (const std::size_t idx : it->second) {
            if (!m.spans[idx].closed()) {
              open = &m.spans[idx];
              break;
            }
          }
        }
        if (open == nullptr) {
          ++m.orphan_ends;
          continue;
        }
        open->end_ns = e.t_ns;
        for (const auto& [k, v] : e.fields) {
          if (k != "trace" && k != "span") open->end_fields.emplace_back(k, v);
        }
      }
    } else if (trace != nullptr) {
      m.trace_for(*trace).events.push_back(ev_idx);
    }
  }

  // Resolve parent links (the parent of an attempt's child spans is the
  // attempt's msg span; ids are unique per instance in practice, so the
  // first instance wins deterministically).
  for (std::size_t i = 0; i < m.spans.size(); ++i) {
    Span& s = m.spans[i];
    if (s.parent.empty()) continue;
    const auto it = instances.find(s.trace + "|" + s.parent);
    if (it == instances.end() || it->second.empty()) continue;
    s.parent_idx = it->second.front();
    m.spans[s.parent_idx].children.push_back(i);
  }
  return m;
}

int depth_of(const Model& m, std::size_t idx) {
  int d = 0;
  while (idx != kNone && m.spans[idx].parent_idx != kNone) {
    idx = m.spans[idx].parent_idx;
    ++d;
  }
  return d;
}

std::string fmt_ms(long long ns) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string fmt_pct(long long part, long long total) {
  char buf[32];
  const double pct =
      total > 0 ? 100.0 * static_cast<double>(part) / static_cast<double>(total)
                : 0.0;
  std::snprintf(buf, sizeof buf, "%5.1f%%", pct);
  return buf;
}

std::string extra_fields(const RawEvent& e) {
  std::string out;
  for (const auto& [k, v] : e.fields) {
    if (k == "trace" || k == "span" || k == "parent") continue;
    if (!out.empty()) out.push_back(' ');
    out += k + "=" + v;
  }
  return out;
}

/// Exchange roots (tlc.settle "exchange" spans) across all traces, in
/// first-appearance order.
std::vector<std::size_t> exchange_roots(const Model& m) {
  std::vector<std::size_t> roots;
  for (const std::string& id : m.trace_order) {
    const TraceTree& t = m.traces.at(id);
    for (const std::size_t idx : t.spans) {
      const Span& s = m.spans[idx];
      if (s.parent.empty() && s.name == "exchange") roots.push_back(idx);
    }
  }
  return roots;
}

/// Total length of the union of the closed intervals, clipped to
/// [lo, hi] — overlap-safe "some message was in flight" time.
long long interval_union_ns(std::vector<std::pair<long long, long long>> iv,
                            long long lo, long long hi) {
  std::sort(iv.begin(), iv.end());
  long long total = 0;
  long long cur_lo = 0;
  long long cur_hi = -1;
  for (auto [b, e] : iv) {
    b = std::max(b, lo);
    e = std::min(e, hi);
    if (b >= e) continue;
    if (cur_hi < 0 || b > cur_hi) {
      if (cur_hi >= 0) total += cur_hi - cur_lo;
      cur_lo = b;
      cur_hi = e;
    } else {
      cur_hi = std::max(cur_hi, e);
    }
  }
  if (cur_hi >= 0) total += cur_hi - cur_lo;
  return total;
}

struct PathBreakdown {
  long long total = 0;
  long long wire = 0;      // union of closed msg-span intervals
  long long queue = 0;     // Σ "queue" span durations
  long long radio = 0;     // Σ net.dl/net.ul "transit" durations
  long long backhaul = 0;  // Σ net.backhaul* "transit" durations
  long long protocol = 0;  // total − wire: crypto, party logic, RTO waits
  int lost_attempts = 0;
};

PathBreakdown breakdown_for(const Model& m, const Span& root) {
  PathBreakdown b;
  const long long end = root.closed() ? root.end_ns : root.begin_ns;
  b.total = end - root.begin_ns;
  std::vector<std::pair<long long, long long>> msg_iv;
  for (const std::size_t idx : m.traces.at(root.trace).spans) {
    const Span& s = m.spans[idx];
    if (&s == &root) continue;
    if (s.name == "msg") {
      if (s.closed()) {
        msg_iv.emplace_back(s.begin_ns, s.end_ns);
      } else {
        ++b.lost_attempts;
      }
      continue;
    }
    if (!s.closed()) continue;
    if (s.name == "queue") {
      b.queue += s.duration_ns();
    } else if (s.name == "transit") {
      if (s.component.rfind("net.backhaul", 0) == 0) {
        b.backhaul += s.duration_ns();
      } else {
        b.radio += s.duration_ns();
      }
    }
  }
  b.wire = interval_union_ns(std::move(msg_iv), root.begin_ns, end);
  b.protocol = b.total - b.wire;
  return b;
}

// ── modes ──────────────────────────────────────────────────────────────

int run_summary(const Model& m) {
  const std::vector<std::size_t> roots = exchange_roots(m);
  std::printf("%zu event(s), %zu span(s) across %zu trace(s); "
              "%zu exchange(s)\n\n",
              m.events.size(), m.spans.size(), m.trace_order.size(),
              roots.size());
  if (roots.empty()) {
    std::printf("no exchange spans found (trace built with TLC_TRACE=OFF, "
                "or wire settlement not enabled?)\n");
    return 0;
  }
  std::printf("%-16s %5s %4s %12s %10s %5s %5s %6s %5s  %s\n", "trace",
              "cycle", "dir", "begin_ms", "dur_ms", "msgs", "retx", "rounds",
              "spans", "status");
  for (const std::size_t idx : roots) {
    const Span& root = m.spans[idx];
    const std::string* cycle = root.begin_field("cycle");
    const std::string* dir = root.begin_field("direction");
    const std::string* completed = root.end_field("completed");
    const std::string* msgs = root.end_field("messages");
    const std::string* retx = root.end_field("retx");
    const std::string* rounds = root.end_field("rounds");
    const char* status = !root.closed()            ? "open"
                         : completed == nullptr    ? "?"
                         : *completed == "true"    ? "settled"
                                                   : "failed";
    std::printf("%-16s %5s %4s %12s %10s %5s %5s %6s %5zu  %s\n",
                root.trace.c_str(), cycle ? cycle->c_str() : "?",
                dir ? dir->c_str() : "?", fmt_ms(root.begin_ns).c_str(),
                root.closed() ? fmt_ms(root.duration_ns()).c_str() : "-",
                msgs ? msgs->c_str() : "-", retx ? retx->c_str() : "-",
                rounds ? rounds->c_str() : "-",
                m.traces.at(root.trace).spans.size(), status);
  }
  return 0;
}

int run_timeline(const Model& m, const std::string& prefix) {
  // Resolve the (possibly abbreviated) trace id.
  std::vector<std::string> matches;
  for (const std::string& id : m.trace_order) {
    if (id.rfind(prefix, 0) == 0) matches.push_back(id);
  }
  if (matches.empty()) {
    std::fprintf(stderr, "tlc_trace: no trace matches '%s'\n", prefix.c_str());
    return 1;
  }
  if (matches.size() > 1) {
    std::fprintf(stderr, "tlc_trace: '%s' is ambiguous (%zu traces)\n",
                 prefix.c_str(), matches.size());
    return 1;
  }
  const TraceTree& t = m.traces.at(matches.front());

  // Per-line records: (t_ns, seq, depth, text).
  struct Line {
    long long t_ns;
    unsigned long long seq;
    std::string text;
  };
  std::vector<Line> lines;
  long long t0 = 0;
  bool have_t0 = false;
  const auto note_t0 = [&](long long t_ns) {
    if (!have_t0 || t_ns < t0) {
      t0 = t_ns;
      have_t0 = true;
    }
  };
  for (const std::size_t idx : t.spans) note_t0(m.spans[idx].begin_ns);
  for (const std::size_t idx : t.events) note_t0(m.events[idx].t_ns);

  const auto indent = [](int depth) { return std::string(
        static_cast<std::size_t>(depth) * 2, ' '); };
  for (const std::size_t idx : t.spans) {
    const Span& s = m.spans[idx];
    const int depth = depth_of(m, idx);
    std::string extra;
    for (const auto& [k, v] : s.begin_fields) extra += " " + k + "=" + v;
    lines.push_back({s.begin_ns, s.begin_seq,
                     indent(depth) + "> " + s.component + " " + s.name + " [" +
                         s.id.substr(0, 8) + "]" + extra});
    if (s.closed()) {
      std::string close;
      for (const auto& [k, v] : s.end_fields) close += " " + k + "=" + v;
      lines.push_back({s.end_ns, s.begin_seq + 1,
                       indent(depth) + "< " + s.component + " " + s.name +
                           " [" + s.id.substr(0, 8) + "] dur_ms=" +
                           fmt_ms(s.duration_ns()) + close});
    } else {
      lines.push_back({s.begin_ns, s.begin_seq + 1,
                       indent(depth) + "! " + s.component + " " + s.name +
                           " [" + s.id.substr(0, 8) + "] never closed "
                           "(lost attempt)"});
    }
  }
  for (const std::size_t idx : t.events) {
    const RawEvent& e = m.events[idx];
    int depth = 1;
    if (const std::string* span = e.field("span")) {
      const auto it = m.traces.find(t.id);
      static_cast<void>(it);
      for (const std::size_t sp : t.spans) {
        if (m.spans[sp].id == *span) {
          depth = depth_of(m, sp) + 1;
          break;
        }
      }
    }
    lines.push_back({e.t_ns, e.seq,
                     indent(depth) + ". " + e.component + " " + e.event +
                         (e.level != "info" ? " [" + e.level + "]" : "") +
                         " " + extra_fields(e)});
  }
  std::sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
    return a.seq < b.seq;
  });

  std::printf("trace %s: %zu span(s), %zu event(s)\n", t.id.c_str(),
              t.spans.size(), t.events.size());
  for (const Line& l : lines) {
    std::printf("%12s ms  %s\n", fmt_ms(l.t_ns - t0).c_str(), l.text.c_str());
  }
  return 0;
}

int run_critical_path(const Model& m) {
  const std::vector<std::size_t> roots = exchange_roots(m);
  if (roots.empty()) {
    std::printf("no exchange spans found; nothing to break down\n");
    return 0;
  }
  PathBreakdown agg;
  int counted = 0;
  for (const std::size_t idx : roots) {
    const Span& root = m.spans[idx];
    const PathBreakdown b = breakdown_for(m, root);
    const std::string* cycle = root.begin_field("cycle");
    const std::string* completed = root.end_field("completed");
    std::printf("trace %s cycle %s (%s): total %s ms\n", root.trace.c_str(),
                cycle ? cycle->c_str() : "?",
                !root.closed()         ? "open"
                : completed == nullptr ? "?"
                : *completed == "true" ? "settled"
                                       : "failed",
                fmt_ms(b.total).c_str());
    std::printf("  msg in flight        %10s ms  %s\n", fmt_ms(b.wire).c_str(),
                fmt_pct(b.wire, b.total).c_str());
    std::printf("    queue wait         %10s ms  %s\n", fmt_ms(b.queue).c_str(),
                fmt_pct(b.queue, b.total).c_str());
    std::printf("    radio transit      %10s ms  %s\n", fmt_ms(b.radio).c_str(),
                fmt_pct(b.radio, b.total).c_str());
    std::printf("    backhaul transit   %10s ms  %s\n",
                fmt_ms(b.backhaul).c_str(),
                fmt_pct(b.backhaul, b.total).c_str());
    std::printf("  protocol + crypto    %10s ms  %s\n",
                fmt_ms(b.protocol).c_str(),
                fmt_pct(b.protocol, b.total).c_str());
    if (b.lost_attempts > 0) {
      std::printf("  lost attempts        %10d     (RTO gaps land in "
                  "protocol+crypto)\n",
                  b.lost_attempts);
    }
    agg.total += b.total;
    agg.wire += b.wire;
    agg.queue += b.queue;
    agg.radio += b.radio;
    agg.backhaul += b.backhaul;
    agg.protocol += b.protocol;
    agg.lost_attempts += b.lost_attempts;
    ++counted;
  }
  std::printf("\naggregate over %d exchange(s): total %s ms = "
              "wire %s (queue %s, radio %s, backhaul %s) + "
              "protocol/crypto %s; %d lost attempt(s)\n",
              counted, fmt_ms(agg.total).c_str(), fmt_ms(agg.wire).c_str(),
              fmt_ms(agg.queue).c_str(), fmt_ms(agg.radio).c_str(),
              fmt_ms(agg.backhaul).c_str(), fmt_ms(agg.protocol).c_str(),
              agg.lost_attempts);
  return 0;
}

int run_stalls(const Model& m) {
  int stalls = 0;
  for (const std::string& id : m.trace_order) {
    const TraceTree& t = m.traces.at(id);
    std::vector<std::string> lines;
    for (const std::size_t idx : t.spans) {
      const Span& s = m.spans[idx];
      if (s.closed()) continue;
      std::string extra;
      for (const auto& [k, v] : s.begin_fields) extra += " " + k + "=" + v;
      lines.push_back("  unclosed " + s.component + " " + s.name + " [" +
                      s.id.substr(0, 8) + "] launched at " +
                      fmt_ms(s.begin_ns) + " ms" + extra);
      ++stalls;
    }
    for (const std::size_t idx : t.events) {
      const RawEvent& e = m.events[idx];
      if (e.level != "warn" && e.level != "error") continue;
      lines.push_back("  " + e.level + " at " + fmt_ms(e.t_ns) + " ms: " +
                      e.component + " " + e.event + " " + extra_fields(e));
      ++stalls;
    }
    if (!lines.empty()) {
      std::printf("trace %s:\n", id.c_str());
      for (const std::string& l : lines) std::printf("%s\n", l.c_str());
    }
  }
  if (stalls == 0) {
    std::printf("no stalls: every span closed, no warn/error events\n");
  } else {
    std::printf("%d stall indicator(s)\n", stalls);
  }
  return 0;
}

int run_folded(const Model& m) {
  // Flamegraph folded stacks: component:name frames joined by ';', value =
  // self time in ns (duration minus closed children), summed across all
  // traces and sorted lexicographically.
  std::map<std::string, long long> folded;
  for (std::size_t i = 0; i < m.spans.size(); ++i) {
    const Span& s = m.spans[i];
    if (!s.closed()) continue;
    long long self = s.duration_ns();
    for (const std::size_t c : s.children) {
      if (m.spans[c].closed()) self -= m.spans[c].duration_ns();
    }
    self = std::max(self, 0ll);
    std::vector<std::string> frames;
    for (std::size_t idx = i; idx != kNone; idx = m.spans[idx].parent_idx) {
      frames.push_back(m.spans[idx].component + ":" + m.spans[idx].name);
    }
    std::string stack;
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
      if (!stack.empty()) stack.push_back(';');
      stack += *it;
    }
    folded[stack] += self;
  }
  for (const auto& [stack, ns] : folded) {
    std::printf("%s %lld\n", stack.c_str(), ns);
  }
  return 0;
}

int run_check(const Model& m) {
  std::vector<std::string> problems;
  if (m.parse_errors > 0) {
    problems.push_back("parse errors: " + std::to_string(m.parse_errors));
  }
  if (m.orphan_ends > 0) {
    problems.push_back("span_end without matching begin: " +
                       std::to_string(m.orphan_ends));
  }

  // Packet-path spans are emitted begin+end at delivery time, so an
  // unclosed queue/transit span can only mean a truncated or corrupt file.
  for (const Span& s : m.spans) {
    if (!s.closed() && (s.name == "queue" || s.name == "transit")) {
      problems.push_back("unclosed " + s.name + " span " + s.id + " in " +
                         s.component);
    }
  }

  const std::vector<std::size_t> roots = exchange_roots(m);
  std::size_t reconstructed = 0;
  for (const std::size_t idx : roots) {
    const Span& root = m.spans[idx];
    bool ok = true;
    if (!root.closed()) {
      problems.push_back("exchange " + root.trace + " never closed");
      ok = false;
    } else if (root.end_field("completed") == nullptr) {
      problems.push_back("exchange " + root.trace +
                         " closed without a completed field");
      ok = false;
    }
    // A settled exchange implies every message index was delivered at
    // least once: some attempt's msg span must have closed for each n in
    // 1..messages. (Lost attempts leave extra unclosed spans — expected.)
    const std::string* completed = root.end_field("completed");
    const std::string* messages = root.end_field("messages");
    if (ok && completed != nullptr && *completed == "true" &&
        messages != nullptr) {
      const long msgs = std::strtol(messages->c_str(), nullptr, 10);
      std::map<std::string, bool> delivered;  // n -> any closed attempt
      for (const std::size_t sp : m.traces.at(root.trace).spans) {
        const Span& s = m.spans[sp];
        if (s.name != "msg") continue;
        const std::string* n = s.begin_field("n");
        if (n == nullptr) continue;
        auto& flag = delivered[*n];
        flag = flag || s.closed();
      }
      for (long n = 1; n <= msgs; ++n) {
        const auto it = delivered.find(std::to_string(n));
        if (it == delivered.end()) {
          problems.push_back("exchange " + root.trace + ": msg n=" +
                             std::to_string(n) + " has no span at all");
          ok = false;
        } else if (!it->second) {
          problems.push_back("exchange " + root.trace + ": msg n=" +
                             std::to_string(n) + " never delivered yet the "
                             "exchange settled");
          ok = false;
        }
      }
    }
    if (ok) ++reconstructed;
  }

  if (!problems.empty()) {
    for (const std::string& p : problems) {
      std::printf("FAIL: %s\n", p.c_str());
    }
    std::printf("reconstructed %zu/%zu exchange(s)\n", reconstructed,
                roots.size());
    return 1;
  }
  if (roots.empty()) {
    std::printf("OK: no exchange spans in trace (TLC_TRACE=OFF build or "
                "settlement disabled); nothing to reconstruct\n");
    return 0;
  }
  std::size_t lost = 0;
  for (const Span& s : m.spans) {
    if (!s.closed() && s.name == "msg") ++lost;
  }
  std::printf("OK: reconstructed %zu/%zu exchange(s) (100%%); %zu span(s), "
              "%zu lost attempt(s), 0 orphan ends, 0 parse errors\n",
              reconstructed, roots.size(), m.spans.size(), lost);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kSummary, kTimeline, kCriticalPath, kStalls, kFolded,
                    kCheck };
  Mode mode = Mode::kSummary;
  std::string timeline_trace;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0) usage(0);
    if (std::strncmp(arg, "--timeline=", 11) == 0) {
      mode = Mode::kTimeline;
      timeline_trace = arg + 11;
    } else if (std::strcmp(arg, "--critical-path") == 0) {
      mode = Mode::kCriticalPath;
    } else if (std::strcmp(arg, "--stalls") == 0) {
      mode = Mode::kStalls;
    } else if (std::strcmp(arg, "--folded") == 0) {
      mode = Mode::kFolded;
    } else if (std::strcmp(arg, "--check") == 0) {
      mode = Mode::kCheck;
    } else if (arg[0] == '-' && std::strcmp(arg, "-") != 0) {
      std::fprintf(stderr, "tlc_trace: unknown option '%s'\n", arg);
      usage(2);
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "tlc_trace: more than one input file\n");
      usage(2);
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "tlc_trace: no input file\n");
    usage(2);
  }

  Model model;
  if (path == "-") {
    model = build_model(std::cin);
  } else {
    std::ifstream file{path};
    if (!file) {
      std::fprintf(stderr, "tlc_trace: cannot open '%s'\n", path.c_str());
      return 2;
    }
    model = build_model(file);
  }

  switch (mode) {
    case Mode::kSummary: return run_summary(model);
    case Mode::kTimeline: return run_timeline(model, timeline_trace);
    case Mode::kCriticalPath: return run_critical_path(model);
    case Mode::kStalls: return run_stalls(model);
    case Mode::kFolded: return run_folded(model);
    case Mode::kCheck: return run_check(model);
  }
  return 0;
}
