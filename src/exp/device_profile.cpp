#include "exp/device_profile.hpp"

namespace tlc::exp {
namespace {

using std::chrono::milliseconds;

constexpr std::array<DeviceProfile, 4> kProfiles{{
    // name, slowdown, link latency, paper negotiation, paper verification
    {"Z840", 1.00, milliseconds{1}, Duration::zero(), milliseconds{16}},
    {"EL20", 1.48, milliseconds{14}, milliseconds{66}, milliseconds{23}},
    {"S7 Edge", 3.71, milliseconds{21}, milliseconds{94}, milliseconds{58}},
    {"Pixel 2XL", 4.82, milliseconds{24}, milliseconds{106},
     milliseconds{76}},
}};

}  // namespace

const std::array<DeviceProfile, 4>& device_profiles() { return kProfiles; }

const DeviceProfile& z840_profile() { return kProfiles[0]; }

}  // namespace tlc::exp
