// ServePipeline — the concurrent charging service around the receipt
// store.
//
// Producers (ingest threads, the fleet replay, bench_serve) submit
// ExchangeRecords; a pool of consumer threads dequeues each record and
// *settles* it: the consumer re-derives the TLC bill from the record's own
// charged/delivered views (Algorithm 1's split) and accepts only records
// whose claimed bills recompute exactly — the live analogue of the
// recomputation check the batch verifier applies to PoC receipts. Accepted
// settlements accumulate into per-cycle totals, per-cause gap counters,
// and fleet-wide sums; kCellReport records queue for the OFCS aggregation
// fold at drain time.
//
// Invariant (CI-gated by bench_serve): every submitted record is accounted
// exactly once — ingested() == settled() + rejected() — and the store
// drains empty.
//
// Concurrency contract:
//   * submit() may run from many producer threads (each with its own
//     registered handle); it applies backpressure (spins) when the store
//     is full, and never drops;
//   * all submits happen-before drain(): the caller stops its producers,
//     then drains. After drain() returns, the stats accessors are stable
//     and single-threaded reads;
//   * totals use relaxed atomics — they are commutative sums, so thread
//     interleaving cannot change the drained values. Latency histograms
//     are per-consumer and merged at drain (LogHistogram::merge_from),
//     keeping the hot path lock-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/record.hpp"
#include "serve/store.hpp"
#include "sim/clock_source.hpp"

namespace tlc::serve {

struct PipelineConfig {
  std::size_t consumers = 2;
  std::size_t max_producers = 4;
  /// Bounded in-flight records; submit() spins when full.
  std::size_t store_capacity = 4096;
  /// Pre-sizes the per-cycle accumulator rows; records with cycle ≥ this
  /// are rejected as malformed.
  std::uint32_t cycles = 4;
  /// Algorithm 1 gap split used for the settlement recomputation check.
  double loss_weight = 0.5;
  /// Optional time backend for enqueue→settle latency accounting; nullptr
  /// disables stamping (replay determinism runs stamp-free).
  const sim::ClockSource* clock = nullptr;
};

/// Fleet-wide totals for one charging cycle, accumulated live (mirrors
/// exp::FleetCycleTotals plus the serving-side extras).
struct PipelineCycleRow {
  std::uint64_t charged_dl = 0;
  std::uint64_t delivered_dl = 0;
  std::uint64_t gap_dl = 0;
  std::uint64_t billed_legacy = 0;
  std::uint64_t billed_tlc = 0;
  std::uint64_t charged_ul = 0;
  std::uint64_t settled_devices = 0;
};

/// One cell's per-cycle RRC COUNTER CHECK totals, queued for the OFCS fold.
struct CellReport {
  std::uint32_t cycle = 0;
  std::uint32_t cell = 0;
  std::uint64_t charged_dl = 0;
  std::uint64_t delivered_dl = 0;
};

/// Drained snapshot of everything the pipeline accumulated.
struct PipelineStats {
  std::uint64_t ingested = 0;
  std::uint64_t settled = 0;   // accepted settlement records
  std::uint64_t rejected = 0;  // failed the recomputation check
  std::uint64_t cell_reports = 0;

  std::uint64_t charged_dl = 0;
  std::uint64_t delivered_dl = 0;
  std::uint64_t gap_dl = 0;
  std::uint64_t billed_legacy = 0;
  std::uint64_t billed_tlc = 0;
  std::uint64_t charged_ul = 0;
  std::uint64_t bursts = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t gap_disconnect = 0;
  std::uint64_t gap_radio = 0;
  std::uint64_t gap_handover = 0;
  std::vector<PipelineCycleRow> cycle_rows;

  /// OFCS aggregator chain over cell reports folded in (cycle, cell)
  /// order — the same order the sharded batch runner's deterministic
  /// merge produces, so the two chains compare equal.
  std::uint64_t ofcs_chain = 0;
  std::uint64_t flagged_reports = 0;

  /// Enqueue→settle latency across all consumers (empty without a clock).
  obs::LogHistogram settle_latency;
};

class ServePipeline {
 public:
  explicit ServePipeline(PipelineConfig config);
  ServePipeline(const ServePipeline&) = delete;
  ServePipeline& operator=(const ServePipeline&) = delete;
  ~ServePipeline();

  /// Registers the calling producer thread; keep the handle alive for all
  /// of its submits. (Consumers register themselves internally.)
  [[nodiscard]] ReceiptStore::Handle register_producer() {
    return store_.register_thread();
  }

  /// Enqueues one record, spinning under backpressure. Stamps
  /// `enqueued_ns` from the configured clock.
  void submit(const ReceiptStore::Handle& handle, ExchangeRecord record);

  /// Call after every producer has finished submitting: waits for the
  /// store to empty, stops the consumers, folds the OFCS chain, merges
  /// per-consumer latency histograms. Idempotent.
  void drain();

  /// Stable only after drain().
  [[nodiscard]] const PipelineStats& stats() const { return stats_; }

  /// Live (racy, monotone) counters, readable at any time.
  [[nodiscard]] std::uint64_t ingested() const {
    return ingested_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t settled() const {
    return settled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t store_depth() const {
    return store_.approx_size();
  }
  [[nodiscard]] bool store_empty() const { return store_.empty_quiescent(); }

  /// Publishes the drained stats into a registry as serve.* counters,
  /// gauges, and the settle-latency percentile histogram.
  void publish(obs::MetricsRegistry* registry) const;

 private:
  struct CycleAtomics {
    std::atomic<std::uint64_t> charged_dl{0};
    std::atomic<std::uint64_t> delivered_dl{0};
    std::atomic<std::uint64_t> gap_dl{0};
    std::atomic<std::uint64_t> billed_legacy{0};
    std::atomic<std::uint64_t> billed_tlc{0};
    std::atomic<std::uint64_t> charged_ul{0};
    std::atomic<std::uint64_t> settled_devices{0};
  };

  /// Consumer-thread-private accumulation, merged once at drain.
  struct ConsumerState {
    std::vector<CellReport> reports;
    obs::LogHistogram latency;
  };

  void consume(std::size_t consumer_index);
  void settle(const ExchangeRecord& rec, ConsumerState* state);

  PipelineConfig config_;
  ReceiptStore store_;

  std::atomic<std::uint64_t> ingested_{0};
  std::atomic<std::uint64_t> settled_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> cell_reports_{0};
  std::atomic<std::uint64_t> bursts_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  GapCounters gap_counters_;
  std::vector<std::unique_ptr<CycleAtomics>> cycle_rows_;

  std::vector<std::unique_ptr<ConsumerState>> consumer_states_;
  std::vector<std::thread> consumers_;
  std::atomic<bool> stopping_{false};
  bool drained_ = false;
  PipelineStats stats_;
};

}  // namespace tlc::serve
