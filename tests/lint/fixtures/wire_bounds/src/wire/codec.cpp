// The checked-cursor exemption: src/wire/codec.cpp is the one wire file
// allowed to touch raw bytes, so nothing below may produce a finding.
#include <cstdint>
#include <cstring>
#include <vector>

namespace tlc::wire {

void exempt_raw_copy(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  std::memcpy(buf.data() + 0, &v, sizeof v);
}

}  // namespace tlc::wire
