#include "wire/legacy_cdr.hpp"

#include <gtest/gtest.h>

#include "wire/codec.hpp"

namespace tlc::wire {
namespace {

LegacyCdr sample_cdr() {
  LegacyCdr cdr;
  cdr.served_imsi = {0x00, 0x01, 0x11, 0x32, 0x54, 0x76, 0x48, 0xf5};
  cdr.gateway_address = (192u << 24) | (168u << 16) | (2u << 8) | 11u;
  cdr.charging_id = 0;
  cdr.sequence_number = 1001;
  cdr.time_of_first_usage = 1546845226;  // 2019-01-07 07:13:46 UTC
  cdr.time_of_last_usage = 1546848826;   // +3600 s
  cdr.uplink_volume = Bytes{274'944};    // multiple of 256 (volume blocks)
  cdr.downlink_volume = Bytes{33'604'096};
  return cdr;
}

TEST(LegacyCdr, EncodedSizeIsExactly34Bytes) {
  // The paper's Fig. 17 baseline: "LTE CDR: 34 bytes".
  EXPECT_EQ(encode_legacy_cdr(sample_cdr()).size(), kLegacyCdrSize);
  EXPECT_EQ(kLegacyCdrSize, 34u);
}

TEST(LegacyCdr, RoundTrip) {
  const LegacyCdr cdr = sample_cdr();
  EXPECT_EQ(decode_legacy_cdr(encode_legacy_cdr(cdr)), cdr);
}

TEST(LegacyCdr, VolumesQuantizedTo256ByteBlocks) {
  LegacyCdr cdr = sample_cdr();
  cdr.uplink_volume = Bytes{1000};  // not a multiple of 256
  const LegacyCdr decoded = decode_legacy_cdr(encode_legacy_cdr(cdr));
  EXPECT_EQ(decoded.uplink_volume.count(), 1024u);  // rounded up
}

TEST(LegacyCdr, ZeroVolumes) {
  LegacyCdr cdr = sample_cdr();
  cdr.uplink_volume = Bytes{0};
  cdr.downlink_volume = Bytes{0};
  const LegacyCdr decoded = decode_legacy_cdr(encode_legacy_cdr(cdr));
  EXPECT_EQ(decoded.uplink_volume.count(), 0u);
  EXPECT_EQ(decoded.downlink_volume.count(), 0u);
}

TEST(LegacyCdr, DecodeRejectsWrongSize) {
  ByteVec data(33, 0);
  EXPECT_THROW((void)decode_legacy_cdr(data), DecodeError);
  data.resize(35);
  EXPECT_THROW((void)decode_legacy_cdr(data), DecodeError);
}

TEST(LegacyCdr, XmlMatchesTrace1Format) {
  const std::string xml = legacy_cdr_to_xml(sample_cdr());
  EXPECT_NE(xml.find("<chargingRecord>"), std::string::npos);
  EXPECT_NE(xml.find("<servedIMSI>00 01 11 32 54 76 48 F5</servedIMSI>"),
            std::string::npos);
  EXPECT_NE(xml.find("<gatewayAddress>192.168.2.11</gatewayAddress>"),
            std::string::npos);
  EXPECT_NE(xml.find("<SequenceNumber>1001</SequenceNumber>"),
            std::string::npos);
  EXPECT_NE(xml.find("<timeUsage>3600</timeUsage>"), std::string::npos);
  EXPECT_NE(xml.find("<datavolumeUplink>274944</datavolumeUplink>"),
            std::string::npos);
  EXPECT_NE(xml.find("</chargingRecord>"), std::string::npos);
}

TEST(LegacyCdr, XmlTimesAreFormatted) {
  const std::string xml = legacy_cdr_to_xml(sample_cdr());
  EXPECT_NE(xml.find("<timeOfFirstUsage>2019-01-07 07:13:46"),
            std::string::npos);
}

}  // namespace
}  // namespace tlc::wire
