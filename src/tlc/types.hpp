// Core vocabulary of the TLC negotiation (Table 1 of the paper).
#pragma once

#include <cstdint>
#include <limits>

#include "common/units.hpp"

namespace tlc::core {

enum class PartyRole : std::uint8_t {
  kEdgeVendor = 0,       // wants to minimize the charge
  kCellularOperator = 1  // wants to maximize the charge
};

[[nodiscard]] constexpr const char* to_string(PartyRole r) {
  return r == PartyRole::kEdgeVendor ? "edge-vendor" : "cellular-operator";
}

[[nodiscard]] constexpr PartyRole peer_of(PartyRole r) {
  return r == PartyRole::kEdgeVendor ? PartyRole::kCellularOperator
                                     : PartyRole::kEdgeVendor;
}

/// What a party's own monitors tell it about one (direction, cycle):
/// its estimate of the sent volume x̂_e and the received volume x̂_o.
///
/// The edge vendor controls both endpoints (device app + server), so its
/// sent estimate is exact and its received estimate is near-exact. The
/// operator measures received exactly on the uplink (gateway) but through
/// the RRC counter-check monitor on the downlink, and estimates sent from
/// gateway/eNodeB observations — those estimation errors are what keeps
/// TLC's residual gap at the ~2% of Fig. 18 instead of zero.
struct LocalView {
  Bytes sent_estimate;      // estimate of x̂_e
  Bytes received_estimate;  // estimate of x̂_o
};

/// Claim bounds (x_L, x_U) maintained by Algorithm 1 (line 12).
struct ClaimBounds {
  Bytes lower{0};
  Bytes upper{std::numeric_limits<std::uint64_t>::max()};

  [[nodiscard]] bool contains(Bytes v) const {
    return v >= lower && v <= upper;
  }
  [[nodiscard]] Bytes clamp(Bytes v) const {
    if (v < lower) return lower;
    if (v > upper) return upper;
    return v;
  }
};

}  // namespace tlc::core
