// Online-gaming traffic model (King of Glory player-control stream, §7.1).
//
// Small UDP datagrams on a fixed tick, with occasional action bursts —
// ~0.02 Mbps average on the downlink, carried on a QCI 7 bearer when the
// Tencent-style acceleration is active.
#pragma once

#include "common/rng.hpp"
#include "workloads/source.hpp"

namespace tlc::workloads {

struct GamingConfig {
  Duration tick = std::chrono::milliseconds{33};  // ~30 updates/s
  Bytes base_packet{70};
  double burst_probability = 0.05;  // team-fight style bursts
  int burst_packets = 6;
  charging::Direction direction = charging::Direction::kDownlink;
  net::Qci qci = net::Qci::kQci7;  // accelerated session
  net::FlowId flow = 20;

  [[nodiscard]] static GamingConfig king_of_glory();
};

class GamingSource final : public TrafficSource {
 public:
  GamingSource(sim::Scheduler& sched, GamingConfig config, Rng rng,
               EmitFn emit);

  void start(TimePoint until) override;
  [[nodiscard]] std::string_view name() const override { return "gaming"; }
  [[nodiscard]] std::uint64_t packets_emitted() const override {
    return packets_;
  }
  [[nodiscard]] Bytes bytes_emitted() const override { return bytes_; }

 private:
  void tick();

  sim::Scheduler& sched_;
  GamingConfig config_;
  Rng rng_;
  EmitFn emit_;
  TimePoint until_ = kTimeZero;
  std::uint64_t packet_id_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t packets_ = 0;
  Bytes bytes_;
  bool started_ = false;
};

}  // namespace tlc::workloads
