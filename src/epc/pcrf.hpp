// Policy and Charging Rules Function (PCRF in 4G, PCF in 5G — §2.1).
//
// Holds per-flow policy rules: which bearer (QCI) a flow rides and what
// latency SLA applies to it. The Tencent gaming-acceleration use case
// (§2.2) is exactly a PCRF interaction: the game's API call installs a
// rule binding its control flow to the QCI 7 bearer. The gateway consults
// the PCRF when forwarding, so rules take effect mid-stream.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "net/packet.hpp"

namespace tlc::epc {

struct PolicyRule {
  net::FlowId flow = 0;
  net::Qci qci = net::Qci::kQci9;
  /// Latency SLA for the flow (0 = none); consumed by the SLA middlebox.
  Duration sla_budget = Duration::zero();
};

class Pcrf {
 public:
  /// Installs or replaces the rule for `rule.flow`.
  void install_rule(PolicyRule rule) { rules_[rule.flow] = rule; }

  /// Removes a flow's dedicated rule; it reverts to the default bearer.
  void remove_rule(net::FlowId flow) { rules_.erase(flow); }

  [[nodiscard]] bool has_rule(net::FlowId flow) const {
    return rules_.contains(flow);
  }

  /// The effective rule for a flow (default bearer when none installed).
  [[nodiscard]] PolicyRule rule_for(net::FlowId flow) const {
    const auto it = rules_.find(flow);
    if (it != rules_.end()) return it->second;
    return PolicyRule{flow, net::Qci::kQci9, Duration::zero()};
  }

  /// Stamps the packet's bearer per the installed rules.
  void apply(net::Packet& packet) const {
    packet.qci = rule_for(packet.flow).qci;
  }

  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }

 private:
  std::map<net::FlowId, PolicyRule> rules_;
};

}  // namespace tlc::epc
