// Appendix D — TLC for generic (non-edge) mobile data charging.
//
// When the server is an arbitrary Internet host instead of a co-located
// edge server, downlink data can also be lost BETWEEN the server and the
// 4G/5G core. The edge's sent record x̂'_e then exceeds the core-received
// x̂_e, and the negotiated charge over-bills by at most c·(x̂'_e − x̂_e) —
// bounded by the Internet-leg loss, unlike legacy 4G/5G's unbounded
// selfish charging.
//
// We sweep the Internet-leg loss and measure the actual over-charge
// against the Appendix D bound.
#include <cstdio>

#include "common/format.hpp"

#include "exp/metrics.hpp"
#include "exp/scenario.hpp"
#include "tlc/negotiation.hpp"

using namespace tlc;
using namespace tlc::exp;

int main() {
  std::printf("## Appendix D: generic downlink charging — over-charge vs "
              "Internet-leg loss\n\n");

  // Base cycle: VR-like downlink through the simulated cellular leg.
  ScenarioConfig cfg;
  cfg.app = AppKind::kVridge;
  cfg.cycles = 3;
  cfg.cycle_length = std::chrono::seconds{300};
  cfg.seed = 9;
  const ScenarioResult base = run_scenario(cfg);
  const double c = cfg.loss_weight;

  Table table{{"internet loss", "x̂ (MB)", "charge (MB)", "over-charge (MB)",
               "bound c·(x̂'e−x̂e) (MB)", "within bound"}};
  // Appendix D analyses the *honest-report* setting: the edge reports its
  // sent volume — which, for an Internet server, is x̂'_e — and the
  // operator reports the received volume. (A rational edge claiming its
  // received estimate would dodge the Internet loss entirely.)
  const auto edge_strategy = core::make_honest_edge();
  const auto op_strategy = core::make_honest_operator();

  for (double internet_loss : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    double xhat_mb = 0;
    double charged_mb = 0;
    double bound_mb = 0;
    bool within = true;
    for (const auto& cyc : base.cycles) {
      // The Internet server sent x̂'_e; only (1−loss) reached the core.
      const double core_received = cyc.truth.sent.as_double();
      const double server_sent = core_received / (1.0 - internet_loss);
      core::LocalView edge_view = cyc.edge_view;
      edge_view.sent_estimate =
          Bytes{static_cast<std::uint64_t>(server_sent)};
      Rng rng{cyc.cycle};
      const auto out =
          core::negotiate(*edge_strategy, edge_view, *op_strategy,
                          cyc.op_view, core::NegotiationConfig{c, 64}, rng);
      if (!out.converged) {
        within = false;
        continue;
      }
      // The fair charge uses the core-received volume (x̂_e) as the top.
      const double xhat = cyc.correct.as_double();
      const double over = out.charged.as_double() - xhat;
      const double bound =
          c * (server_sent - core_received) + xhat * 0.035;  // + slack
      xhat_mb += xhat / 1e6;
      charged_mb += out.charged.as_double() / 1e6;
      bound_mb += c * (server_sent - core_received) / 1e6;
      if (over > bound) within = false;
    }
    const double n = static_cast<double>(base.cycles.size());
    table.add_row({format_percent(internet_loss), fmt(xhat_mb / n, 2),
                   fmt(charged_mb / n, 2),
                   fmt((charged_mb - xhat_mb) / n, 2), fmt(bound_mb / n, 2),
                   within ? "yes" : "NO"});
  }
  table.print();
  std::printf("\nThe realized over-charge tracks (and never exceeds) the "
              "Appendix D bound\nc·(x̂'_e − x̂_e); legacy 4G/5G offers no "
              "such bound at all.\n");
  return 0;
}
