#include "tlc/receipt_store.hpp"

#include <fstream>
#include <stdexcept>

#include "wire/codec.hpp"

namespace tlc::core {
namespace {

constexpr char kMagic[8] = {'T', 'L', 'C', 'R', 'C', 'P', 'T', '1'};

void write_u32(std::ostream& os, std::uint32_t v) {
  const char bytes[4] = {
      static_cast<char>(v >> 24), static_cast<char>(v >> 16),
      static_cast<char>(v >> 8), static_cast<char>(v)};
  os.write(bytes, 4);
}

std::uint32_t read_u32(std::istream& is) {
  unsigned char bytes[4];
  is.read(reinterpret_cast<char*>(bytes), 4);
  if (!is) throw std::runtime_error{"ReceiptStore: truncated record length"};
  return (static_cast<std::uint32_t>(bytes[0]) << 24) |
         (static_cast<std::uint32_t>(bytes[1]) << 16) |
         (static_cast<std::uint32_t>(bytes[2]) << 8) |
         static_cast<std::uint32_t>(bytes[3]);
}

}  // namespace

ReceiptStore::ReceiptStore(std::filesystem::path path)
    : path_(std::move(path)) {}

void ReceiptStore::append(const PocMsg& poc) {
  const bool fresh = !std::filesystem::exists(path_);
  std::ofstream os{path_, std::ios::binary | std::ios::app};
  if (!os) {
    throw std::runtime_error{"ReceiptStore: cannot open " + path_.string()};
  }
  if (fresh) os.write(kMagic, sizeof(kMagic));
  const ByteVec bytes = poc.encode();
  write_u32(os, static_cast<std::uint32_t>(bytes.size()));
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  if (!os) throw std::runtime_error{"ReceiptStore: write failed"};
}

std::vector<PocMsg> ReceiptStore::load_all() const {
  std::vector<PocMsg> out;
  if (!std::filesystem::exists(path_)) return out;
  std::ifstream is{path_, std::ios::binary};
  if (!is) {
    throw std::runtime_error{"ReceiptStore: cannot open " + path_.string()};
  }
  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(magic));
  if (!is || !std::equal(std::begin(magic), std::end(magic),
                         std::begin(kMagic))) {
    throw std::runtime_error{"ReceiptStore: not a receipt file"};
  }
  while (is.peek() != std::ifstream::traits_type::eof()) {
    const std::uint32_t len = read_u32(is);
    ByteVec bytes(len);
    is.read(reinterpret_cast<char*>(bytes.data()), len);
    if (!is) throw std::runtime_error{"ReceiptStore: truncated record"};
    try {
      out.push_back(PocMsg::decode(bytes));
    } catch (const wire::DecodeError& e) {
      throw std::runtime_error{std::string{"ReceiptStore: corrupt record: "} +
                               e.what()};
    }
  }
  return out;
}

std::size_t ReceiptStore::count() const { return load_all().size(); }

ReceiptStore::AuditReport ReceiptStore::audit(
    PublicVerifier& verifier) const {
  AuditReport report;
  for (const PocMsg& poc : load_all()) {
    ++report.total;
    VerifiedCharge charge;
    const VerifyResult result = verifier.verify(poc.encode(), &charge);
    ++report.by_result[result];
    if (result == VerifyResult::kOk) {
      ++report.accepted;
      report.total_verified_volume += charge.charged;
    } else {
      ++report.rejected;
    }
  }
  return report;
}

// ---------------------------------------------------- BatchedReceiptStore

namespace {

constexpr char kBatchFileMagic[8] = {'T', 'L', 'C', 'R', 'C', 'P', 'T', '2'};

}  // namespace

BatchedReceiptStore::BatchedReceiptStore(std::filesystem::path path,
                                         const crypto::KeyPair& key,
                                         PartyRole sender, FlushPolicy policy)
    : path_(std::move(path)), builder_(key, sender, policy) {
  // Reopening an existing archive continues its hash chain — restarting
  // at genesis would make the store's own audit report a chain splice on
  // the first batch appended after the reopen.
  if (std::filesystem::exists(path_)) {
    const std::vector<ReceiptBatch> existing = load_all();
    if (!existing.empty()) {
      const BatchHead& last = existing.back().head;
      builder_.resume_chain(last.batch_index + 1, last.link);
    }
  }
}

void BatchedReceiptStore::append(const PocMsg& poc, std::uint64_t cycle) {
  if (auto batch = builder_.append(poc, cycle)) write_batch(*batch);
}

void BatchedReceiptStore::end_cycle() {
  if (auto batch = builder_.end_cycle()) write_batch(*batch);
}

void BatchedReceiptStore::flush() {
  if (auto batch = builder_.flush()) write_batch(*batch);
}

void BatchedReceiptStore::write_batch(const ReceiptBatch& batch) {
  const bool fresh = !std::filesystem::exists(path_);
  std::ofstream os{path_, std::ios::binary | std::ios::app};
  if (!os) {
    throw std::runtime_error{"BatchedReceiptStore: cannot open " +
                             path_.string()};
  }
  if (fresh) os.write(kBatchFileMagic, sizeof(kBatchFileMagic));
  // Stored record == wire frame with a zeroed header: the archive holds
  // exactly the bytes a settlement would transmit.
  const ByteVec bytes =
      wire::encode_batch_frame(to_batch_frame(batch, wire::FrameHeader{}));
  write_u32(os, static_cast<std::uint32_t>(bytes.size()));
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  if (!os) throw std::runtime_error{"BatchedReceiptStore: write failed"};
}

std::vector<ReceiptBatch> BatchedReceiptStore::load_all() const {
  std::vector<ReceiptBatch> out;
  if (!std::filesystem::exists(path_)) return out;
  std::ifstream is{path_, std::ios::binary};
  if (!is) {
    throw std::runtime_error{"BatchedReceiptStore: cannot open " +
                             path_.string()};
  }
  char magic[sizeof(kBatchFileMagic)];
  is.read(magic, sizeof(magic));
  if (!is || !std::equal(std::begin(magic), std::end(magic),
                         std::begin(kBatchFileMagic))) {
    throw std::runtime_error{"BatchedReceiptStore: not a batch receipt file"};
  }
  while (is.peek() != std::ifstream::traits_type::eof()) {
    const std::uint32_t len = read_u32(is);
    ByteVec bytes(len);
    is.read(reinterpret_cast<char*>(bytes.data()), len);
    if (!is) throw std::runtime_error{"BatchedReceiptStore: truncated record"};
    try {
      out.push_back(from_batch_frame(wire::decode_batch_frame(bytes)));
    } catch (const wire::DecodeError& e) {
      throw std::runtime_error{
          std::string{"BatchedReceiptStore: corrupt record: "} + e.what()};
    }
  }
  return out;
}

std::size_t BatchedReceiptStore::count() const {
  std::size_t n = 0;
  for (const ReceiptBatch& b : load_all()) n += b.entries.size();
  return n;
}

BatchedReceiptStore::BatchAuditReport BatchedReceiptStore::audit(
    BatchedVerifier& verifier) const {
  BatchAuditReport report;
  for (const ReceiptBatch& batch : load_all()) {
    ++report.batches;
    const BatchAudit audit = verifier.verify_batch(batch);
    ++report.by_head_result[audit.head];
    if (audit.head != BatchVerifyResult::kOk) {
      ++report.heads_rejected;
      // Entries under a rejected head count as rejected receipts.
      report.receipts.total += batch.entries.size();
      report.receipts.rejected += batch.entries.size();
      continue;
    }
    ++report.heads_accepted;
    report.receipts.total += audit.receipts.size();
    report.receipts.accepted += audit.accepted;
    report.receipts.rejected += audit.rejected;
    report.receipts.total_verified_volume += audit.total_verified_volume;
    for (const VerifyResult r : audit.receipts) ++report.receipts.by_result[r];
  }
  return report;
}

}  // namespace tlc::core
