// Usage records and the TLC charging model.
//
// Terminology follows Table 1 of the paper:
//   x̂_e — ground-truth volume the edge sent        (sender side)
//   x̂_o — ground-truth volume the receiver got      (receiver side)
//   x̂   — the correct charge: x̂_o + c · (x̂_e − x̂_o)
//   x_e, x_o — the (possibly selfish) claims exchanged in negotiation.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "charging/data_plan.hpp"

namespace tlc::charging {

/// Traffic direction relative to the edge device.
enum class Direction : std::uint8_t { kUplink = 0, kDownlink = 1 };

[[nodiscard]] constexpr const char* to_string(Direction d) {
  return d == Direction::kUplink ? "uplink" : "downlink";
}

/// Volume observed by one vantage point over one cycle, split by direction.
struct UsageRecord {
  Bytes uplink;
  Bytes downlink;

  [[nodiscard]] Bytes total() const { return uplink + downlink; }
  [[nodiscard]] Bytes in(Direction d) const {
    return d == Direction::kUplink ? uplink : downlink;
  }

  UsageRecord& operator+=(const UsageRecord& other) {
    uplink += other.uplink;
    downlink += other.downlink;
    return *this;
  }
  friend UsageRecord operator+(UsageRecord a, const UsageRecord& b) {
    a += b;
    return a;
  }
  friend bool operator==(const UsageRecord&, const UsageRecord&) = default;
};

/// Ground truth for one (app, device, direction, cycle): what was really
/// sent and received. Only the simulator knows this; parties estimate it
/// through their monitors.
struct GroundTruth {
  Bytes sent;      // x̂_e
  Bytes received;  // x̂_o ≤ x̂_e

  [[nodiscard]] Bytes lost() const { return sent - received; }
  [[nodiscard]] double loss_fraction() const {
    if (sent.count() == 0) return 0.0;
    return lost().as_double() / sent.as_double();
  }
};

/// The negotiated charging function — line 8 of Algorithm 1. Symmetric in
/// its arguments so a verifier can evaluate it without knowing which side
/// claimed which value:
///   x = x_o + c·(x_e − x_o)   if x_o ≤ x_e
///   x = x_e + c·(x_o − x_e)   otherwise
[[nodiscard]] Bytes charged_volume(Bytes claim_e, Bytes claim_o,
                                   double loss_weight);

/// The correct charge x̂ for a cycle given ground truth and the plan.
[[nodiscard]] Bytes correct_charge(const GroundTruth& truth,
                                   double loss_weight);

/// Charging-gap metrics used throughout the evaluation (§7.1):
///   ∆ = |x − x̂|  (absolute gap), ε = ∆ / x̂ (relative gap ratio).
struct GapMetrics {
  double absolute_bytes = 0.0;  // ∆
  double ratio = 0.0;           // ε
};

[[nodiscard]] GapMetrics gap_metrics(Bytes charged, Bytes correct);

}  // namespace tlc::charging
