// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Designed for packet-path use: instruments are registered once (name
// lookup, allocation) and then held by reference, so every increment is a
// plain integer add with no lookup and no allocation. A registry is an
// instance, not a global — each Testbed owns one, which keeps parallel
// simulations and tests isolated.
//
// `snapshot()` deep-copies every instrument into a plain-data
// MetricsSnapshot that is immune to later registry mutation and can be
// rendered as canonical JSON (keys sorted, integers exact) or as a console
// table.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace tlc::obs {

/// Monotonically increasing event/byte count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous level (queue depth, rate); tracks its high watermark.
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void add(double delta) { set(value_ + delta); }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram: bucket i counts observations ≤ upper_bounds[i];
/// one implicit overflow bucket counts the rest. Bounds are fixed at
/// registration, so observe() never allocates.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  /// bucket_counts().size() == upper_bounds().size() + 1 (overflow last).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return counts_;
  }

 private:
  std::vector<double> bounds_;         // sorted ascending
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 entries
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct GaugeSnapshot {
  double value = 0.0;
  double max = 0.0;
};

struct HistogramSnapshot {
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Plain-data copy of a registry at one instant.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counter value, or 0 when the counter was never registered.
  [[nodiscard]] std::uint64_t counter_or_zero(std::string_view name) const;

  /// Canonical single-line JSON: keys in sorted order, counters exact
  /// integers — byte-identical across runs of a deterministic simulation.
  [[nodiscard]] std::string to_json() const;

  /// Human-readable multi-line dump.
  void print(std::FILE* out) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the instrument registered under `name`, creating it on first
  /// use. References stay valid for the registry's lifetime (node-based
  /// storage), so hot paths resolve once and increment directly.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` is honoured on first registration only; later calls
  /// with the same name return the existing histogram unchanged.
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] std::string to_json() const { return snapshot().to_json(); }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace tlc::obs
