#include "tlc/strategy.hpp"

#include <gtest/gtest.h>

namespace tlc::core {
namespace {

const LocalView kView{Bytes{1'000'000}, Bytes{900'000}};  // sent, received

TEST(HonestStrategies, ClaimTruthfully) {
  Rng rng{1};
  ClaimBounds bounds;
  EXPECT_EQ(make_honest_edge()->claim(kView, bounds, 1, rng),
            Bytes{1'000'000});
  EXPECT_EQ(make_honest_operator()->claim(kView, bounds, 1, rng),
            Bytes{900'000});
}

TEST(OptimalStrategies, ClaimCrossEstimates) {
  // Theorem 4: edge claims x̂_o, operator claims x̂_e.
  Rng rng{1};
  ClaimBounds bounds;
  EXPECT_EQ(make_optimal_edge()->claim(kView, bounds, 1, rng),
            Bytes{900'000});
  EXPECT_EQ(make_optimal_operator()->claim(kView, bounds, 1, rng),
            Bytes{1'000'000});
}

TEST(OptimalEdge, NeverClaimsAboveSent) {
  // Degenerate view where the received estimate exceeds sent.
  const LocalView weird{Bytes{100}, Bytes{200}};
  Rng rng{1};
  ClaimBounds bounds;
  EXPECT_EQ(make_optimal_edge()->claim(weird, bounds, 1, rng), Bytes{100});
}

TEST(RandomEdge, ClaimsBelowSent) {
  Rng rng{7};
  ClaimBounds bounds;
  const auto strategy = make_random_edge(0.4);
  for (int i = 0; i < 200; ++i) {
    const Bytes claim = strategy->claim(kView, bounds, 1, rng);
    EXPECT_LE(claim, kView.sent_estimate);
    EXPECT_GE(claim.as_double(), kView.sent_estimate.as_double() * 0.6 - 1);
  }
}

TEST(RandomOperator, ClaimsAboveReceived) {
  Rng rng{7};
  ClaimBounds bounds;
  const auto strategy = make_random_operator(0.4);
  for (int i = 0; i < 200; ++i) {
    const Bytes claim = strategy->claim(kView, bounds, 1, rng);
    EXPECT_GE(claim, kView.received_estimate);
    EXPECT_LE(claim.as_double(),
              kView.received_estimate.as_double() * 1.4 + 1);
  }
}

TEST(RandomStrategies, RespectTightenedBounds) {
  Rng rng{9};
  ClaimBounds bounds{Bytes{950'000}, Bytes{980'000}};
  for (int i = 0; i < 100; ++i) {
    const Bytes e = make_random_edge(0.5)->claim(kView, bounds, 2, rng);
    EXPECT_TRUE(bounds.contains(e));
    const Bytes o = make_random_operator(0.5)->claim(kView, bounds, 2, rng);
    EXPECT_TRUE(bounds.contains(o));
  }
}

TEST(CrossChecks, OperatorRejectsUnderclaimBelowReceived) {
  const auto op = make_optimal_operator();
  EXPECT_TRUE(op->reject_peer(Bytes{500'000}, kView));   // way below x̂_o
  EXPECT_FALSE(op->reject_peer(Bytes{900'000}, kView));  // exactly x̂_o
  EXPECT_FALSE(op->reject_peer(Bytes{950'000}, kView));
}

TEST(CrossChecks, EdgeRejectsOverclaimAboveSent) {
  const auto edge = make_optimal_edge();
  EXPECT_TRUE(edge->reject_peer(Bytes{1'500'000}, kView));  // above x̂_e
  EXPECT_FALSE(edge->reject_peer(Bytes{1'000'000}, kView));
  EXPECT_FALSE(edge->reject_peer(Bytes{950'000}, kView));
}

TEST(CrossChecks, ToleranceAbsorbsMeasurementNoise) {
  // A 0.5% record error must not cause a rejection (Fig. 18 noise).
  const auto op = make_optimal_operator();
  const Bytes slightly_low{static_cast<std::uint64_t>(900'000 * 0.996)};
  EXPECT_FALSE(op->reject_peer(slightly_low, kView));
}

TEST(CrossChecks, CustomToleranceWidens) {
  CrossCheckTolerance loose;
  loose.relative = 0.10;
  const auto op = make_honest_operator(loose);
  EXPECT_FALSE(op->reject_peer(Bytes{820'000}, kView));  // within 10%
  EXPECT_TRUE(op->reject_peer(Bytes{700'000}, kView));
}

TEST(CrossChecks, AbsoluteFloorForTinyVolumes) {
  // Gaming-scale volumes: the absolute slack floor dominates.
  const LocalView tiny{Bytes{40'000}, Bytes{38'000}};
  const auto op = make_honest_operator();
  EXPECT_FALSE(op->reject_peer(Bytes{34'000}, tiny));  // within 5 KB slack
  EXPECT_TRUE(op->reject_peer(Bytes{20'000}, tiny));
}

TEST(Stubborn, IgnoresEverything) {
  const auto s = make_stubborn(Bytes{123});
  Rng rng{1};
  ClaimBounds bounds{Bytes{500}, Bytes{600}};
  EXPECT_EQ(s->claim(kView, bounds, 3, rng), Bytes{123});
  EXPECT_FALSE(s->obeys_bounds());
  EXPECT_FALSE(s->reject_peer(Bytes{999'999'999}, kView));
}

TEST(Strategies, HaveDistinctNames) {
  EXPECT_EQ(make_honest_edge()->name(), "honest-edge");
  EXPECT_EQ(make_honest_operator()->name(), "honest-operator");
  EXPECT_EQ(make_optimal_edge()->name(), "optimal-edge");
  EXPECT_EQ(make_optimal_operator()->name(), "optimal-operator");
  EXPECT_EQ(make_random_edge()->name(), "random-edge");
  EXPECT_EQ(make_random_operator()->name(), "random-operator");
  EXPECT_EQ(make_stubborn(Bytes{1})->name(), "stubborn");
}

TEST(ClaimBounds, ContainsAndClamp) {
  ClaimBounds b{Bytes{10}, Bytes{20}};
  EXPECT_TRUE(b.contains(Bytes{10}));
  EXPECT_TRUE(b.contains(Bytes{20}));
  EXPECT_FALSE(b.contains(Bytes{9}));
  EXPECT_FALSE(b.contains(Bytes{21}));
  EXPECT_EQ(b.clamp(Bytes{5}), Bytes{10});
  EXPECT_EQ(b.clamp(Bytes{50}), Bytes{20});
  EXPECT_EQ(b.clamp(Bytes{15}), Bytes{15});
}

TEST(PartyRole, PeerOf) {
  EXPECT_EQ(peer_of(PartyRole::kEdgeVendor), PartyRole::kCellularOperator);
  EXPECT_EQ(peer_of(PartyRole::kCellularOperator), PartyRole::kEdgeVendor);
}

}  // namespace
}  // namespace tlc::core
