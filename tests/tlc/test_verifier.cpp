#include "tlc/verifier.hpp"

#include <gtest/gtest.h>

#include "tlc/protocol_fixture.hpp"

namespace tlc::core {
namespace {

class VerifierTest : public testing::ProtocolFixture {
 protected:
  static constexpr LocalView kTruth{Bytes{1'000'000}, Bytes{920'000}};

  PublicVerifier make_verifier() {
    return PublicVerifier{edge_keys().public_key(),
                          operator_keys().public_key(), plan()};
  }
};

TEST_F(VerifierTest, AcceptsValidPoc) {
  const PocMsg poc = make_valid_poc(kTruth, kTruth);
  PublicVerifier verifier = make_verifier();
  VerifiedCharge out;
  EXPECT_EQ(verifier.verify(poc.encode(), &out), VerifyResult::kOk);
  EXPECT_EQ(out.charged, Bytes{960'000});  // x̂ at c = 0.5
  EXPECT_EQ(out.edge_claim, Bytes{920'000});
  EXPECT_EQ(out.operator_claim, Bytes{1'000'000});
  EXPECT_EQ(out.cycle_index, 3u);
  EXPECT_EQ(out.round, 1);
  EXPECT_EQ(verifier.accepted(), 1u);
}

TEST_F(VerifierTest, RejectsMalformedBytes) {
  PublicVerifier verifier = make_verifier();
  const ByteVec garbage{1, 2, 3};
  EXPECT_EQ(verifier.verify(garbage), VerifyResult::kMalformed);
  EXPECT_EQ(verifier.rejected(), 1u);
}

TEST_F(VerifierTest, RejectsTamperedCharge) {
  PocMsg poc = make_valid_poc(kTruth, kTruth);
  poc.charged = Bytes{1};  // breaks the outer signature
  PublicVerifier verifier = make_verifier();
  EXPECT_EQ(verifier.verify(poc.encode()), VerifyResult::kBadPocSignature);
}

TEST_F(VerifierTest, RejectsResignedTamperedCharge) {
  // A selfish operator rewrites x and re-signs the PoC with its own key —
  // the signature is fine, but the recomputation (Algorithm 2 line 8)
  // catches the mismatch against the dual-signed claims.
  PocMsg poc = make_valid_poc(kTruth, kTruth);
  poc.charged = Bytes{2'000'000};
  poc.sign(operator_keys());
  PublicVerifier verifier = make_verifier();
  EXPECT_EQ(verifier.verify(poc.encode()), VerifyResult::kChargeMismatch);
}

TEST_F(VerifierTest, RejectsForgedPocFromIntruder) {
  PocMsg poc = make_valid_poc(kTruth, kTruth);
  poc.charged = Bytes{5};
  poc.sign(intruder_keys());  // signed by neither registered party
  PublicVerifier verifier = make_verifier();
  EXPECT_EQ(verifier.verify(poc.encode()), VerifyResult::kBadPocSignature);
}

TEST_F(VerifierTest, RejectsSwappedKeys) {
  const PocMsg poc = make_valid_poc(kTruth, kTruth);
  PublicVerifier verifier{operator_keys().public_key(),
                          edge_keys().public_key(), plan()};
  EXPECT_NE(verifier.verify(poc.encode()), VerifyResult::kOk);
}

TEST_F(VerifierTest, RejectsPlanMismatch) {
  const PocMsg poc = make_valid_poc(kTruth, kTruth);
  charging::DataPlan other = plan();
  other.loss_weight = 0.25;
  PublicVerifier verifier{edge_keys().public_key(),
                          operator_keys().public_key(), other};
  EXPECT_EQ(verifier.verify(poc.encode()), VerifyResult::kPlanMismatch);
}

TEST_F(VerifierTest, RejectsCycleLengthMismatch) {
  const PocMsg poc = make_valid_poc(kTruth, kTruth);
  charging::DataPlan other = plan();
  other.cycle_length = std::chrono::hours{1};
  PublicVerifier verifier{edge_keys().public_key(),
                          operator_keys().public_key(), other};
  EXPECT_EQ(verifier.verify(poc.encode()), VerifyResult::kPlanMismatch);
}

TEST_F(VerifierTest, RejectsNonceTampering) {
  PocMsg poc = make_valid_poc(kTruth, kTruth);
  poc.nonce_edge[0] ^= 0x01;  // trailing nonces are outside the signature
  PublicVerifier verifier = make_verifier();
  EXPECT_EQ(verifier.verify(poc.encode()), VerifyResult::kNonceMismatch);
}

TEST_F(VerifierTest, DetectsReplayedPoc) {
  const PocMsg poc = make_valid_poc(kTruth, kTruth);
  PublicVerifier verifier = make_verifier();
  EXPECT_EQ(verifier.verify(poc.encode()), VerifyResult::kOk);
  EXPECT_EQ(verifier.verify(poc.encode()), VerifyResult::kReplayed);
  EXPECT_EQ(verifier.accepted(), 1u);
  EXPECT_EQ(verifier.rejected(), 1u);
}

TEST_F(VerifierTest, DistinctNegotiationsBothAccepted) {
  const PocMsg poc1 = make_valid_poc(kTruth, kTruth, 100);
  const PocMsg poc2 = make_valid_poc(kTruth, kTruth, 200);
  PublicVerifier verifier = make_verifier();
  EXPECT_EQ(verifier.verify(poc1.encode()), VerifyResult::kOk);
  EXPECT_EQ(verifier.verify(poc2.encode()), VerifyResult::kOk);
  EXPECT_EQ(verifier.accepted(), 2u);
}

TEST_F(VerifierTest, EdgeInitiatedPocAlsoVerifies) {
  // When the edge initiates, the operator sends the CDA and the edge
  // constructs the PoC — roles inside the proof flip.
  const auto es = make_optimal_edge();
  const auto os = make_optimal_operator();
  ProtocolParty edge{edge_config(kTruth), *es, edge_keys(),
                     operator_keys().public_key(), Rng{31}};
  ProtocolParty op{operator_config(kTruth), *os, operator_keys(),
                   edge_keys().public_key(), Rng{32}};
  run_exchange(edge, op);
  ASSERT_TRUE(edge.poc().has_value());
  PublicVerifier verifier = make_verifier();
  EXPECT_EQ(verifier.verify(edge.poc()->encode()), VerifyResult::kOk);
}

TEST_F(VerifierTest, MultiRoundPocVerifies) {
  // A PoC produced after random-strategy re-claims is equally valid.
  const auto es = make_random_edge(0.5);
  const auto os = make_random_operator(0.5);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ProtocolParty edge{edge_config(kTruth), *es, edge_keys(),
                       operator_keys().public_key(), Rng{seed}};
    ProtocolParty op{operator_config(kTruth), *os, operator_keys(),
                     edge_keys().public_key(), Rng{seed + 77}};
    run_exchange(op, edge);
    ASSERT_EQ(op.state(), ProtocolState::kDone) << "seed " << seed;
    PublicVerifier verifier = make_verifier();
    VerifiedCharge out;
    EXPECT_EQ(verifier.verify(op.poc()->encode(), &out), VerifyResult::kOk);
    EXPECT_EQ(out.round, op.rounds());
  }
}

TEST_F(VerifierTest, ResultStringsAreDistinct) {
  EXPECT_STREQ(to_string(VerifyResult::kOk), "ok");
  EXPECT_STREQ(to_string(VerifyResult::kReplayed), "replayed");
  EXPECT_STREQ(to_string(VerifyResult::kChargeMismatch), "charge-mismatch");
}

}  // namespace
}  // namespace tlc::core
