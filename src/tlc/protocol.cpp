#include "tlc/protocol.hpp"

#include <algorithm>
#include <stdexcept>

#include "charging/usage.hpp"
#include "wire/codec.hpp"

namespace tlc::core {

const char* to_string(ProtocolError e) {
  switch (e) {
    case ProtocolError::kNone:
      return "none";
    case ProtocolError::kBadSignature:
      return "bad-signature";
    case ProtocolError::kPlanMismatch:
      return "plan-mismatch";
    case ProtocolError::kRoleConfusion:
      return "role-confusion";
    case ProtocolError::kReplayedSequence:
      return "replayed-sequence";
    case ProtocolError::kEmbeddedMismatch:
      return "embedded-mismatch";
    case ProtocolError::kChargeMismatch:
      return "charge-mismatch";
    case ProtocolError::kExceededMaxRounds:
      return "exceeded-max-rounds";
    case ProtocolError::kProtocolViolation:
      return "protocol-violation";
  }
  return "?";
}

const char* to_string(ProtocolState s) {
  switch (s) {
    case ProtocolState::kIdle:
      return "idle";
    case ProtocolState::kNegotiating:
      return "negotiating";
    case ProtocolState::kDone:
      return "done";
    case ProtocolState::kFailed:
      return "failed";
  }
  return "?";
}

ProtocolParty::ProtocolParty(Config config, const Strategy& strategy,
                             crypto::KeyPair keys, crypto::PublicKey peer_key,
                             Rng rng)
    : config_(std::move(config)),
      strategy_(strategy),
      keys_(std::move(keys)),
      peer_key_(std::move(peer_key)),
      rng_(rng),
      plan_echo_(PlanEcho::from(config_.plan, config_.cycle)) {
  config_.plan.validate();
  if (!keys_.valid() || !peer_key_.valid()) {
    throw std::invalid_argument{"ProtocolParty: keys required"};
  }
  component_ = std::string{"tlc."} + to_string(config_.role);
  if (config_.obs != nullptr) {
    obs::MetricsRegistry& m = config_.obs->metrics;
    m_msgs_sent_ = &m.counter("tlc.protocol.msgs_sent");
    m_wire_bytes_sent_ = &m.counter("tlc.protocol.wire_bytes_sent");
    m_wire_bytes_received_ = &m.counter("tlc.protocol.wire_bytes_received");
    m_exchanges_done_ = &m.counter("tlc.protocol.exchanges_done");
    m_exchanges_failed_ = &m.counter("tlc.protocol.exchanges_failed");
    m_rounds_ = &m.histogram("tlc.protocol.rounds",
                             {1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
  }
}

void ProtocolParty::transition(ProtocolState to) {
  const ProtocolState from = state_;
  state_ = to;
  if (from == to) return;
  if (config_.exchange.valid()) {
    TLC_TRACE_EVENT(config_.obs, component_, "state", obs::TraceLevel::kInfo,
                    obs::trace_field(config_.exchange),
                    obs::span_field(config_.exchange),
                    obs::field("from", to_string(from)),
                    obs::field("to", to_string(to)),
                    obs::field("round", round_),
                    obs::field("error", to_string(error_)));
  } else {
    TLC_TRACE_EVENT(config_.obs, component_, "state", obs::TraceLevel::kInfo,
                    obs::field("from", to_string(from)),
                    obs::field("to", to_string(to)),
                    obs::field("round", round_),
                    obs::field("error", to_string(error_)));
  }
  if (to == ProtocolState::kDone) {
    if (m_exchanges_done_ != nullptr) m_exchanges_done_->inc();
    if (m_rounds_ != nullptr) m_rounds_->observe(static_cast<double>(round_));
  } else if (to == ProtocolState::kFailed) {
    if (m_exchanges_failed_ != nullptr) m_exchanges_failed_->inc();
    if (config_.obs != nullptr) {
      config_.obs->metrics
          .counter(std::string{"tlc.protocol.error."} + to_string(error_))
          .inc();
    }
  }
}

Bytes ProtocolParty::next_own_claim() {
  Bytes claim = strategy_.claim(config_.view, bounds_, round_, rng_);
  if (strategy_.obeys_bounds()) claim = bounds_.clamp(claim);
  own_claim_ = claim;
  return claim;
}

void ProtocolParty::tighten_bounds(Bytes a, Bytes b) {
  bounds_.lower = std::min(a, b);
  bounds_.upper = std::max(a, b);
}

std::optional<Message> ProtocolParty::fail(ProtocolError error) {
  error_ = error;
  transition(ProtocolState::kFailed);
  return std::nullopt;
}

Message ProtocolParty::track(Message msg) {
  const std::size_t size = encode_message(msg).size();
  sent_sizes_.push_back(size);
  if (m_msgs_sent_ != nullptr) {
    m_msgs_sent_->inc();
    m_wire_bytes_sent_->inc(size);
  }
  return msg;
}

CdrMsg ProtocolParty::make_cdr() {
  CdrMsg m;
  m.plan = plan_echo_;
  m.sender = config_.role;
  m.direction = config_.direction;
  m.seq = ++seq_;
  m.round = static_cast<std::uint32_t>(round_);
  m.nonce = make_nonce(rng_);
  m.claim = next_own_claim();
  m.sign(keys_);
  own_nonce_ = m.nonce;
  last_sent_cdr_ = m.encode();
  last_sent_cda_.clear();
  return m;
}

CdaMsg ProtocolParty::make_cda(const CdrMsg& peer_cdr) {
  CdaMsg m;
  m.plan = plan_echo_;
  m.sender = config_.role;
  m.direction = config_.direction;
  m.seq = ++seq_;
  m.round = static_cast<std::uint32_t>(round_);
  m.nonce = make_nonce(rng_);
  m.claim = next_own_claim();
  m.peer_cdr = peer_cdr.encode();
  m.sign(keys_);
  own_nonce_ = m.nonce;
  last_sent_cda_ = m.encode();
  return m;
}

PocMsg ProtocolParty::make_poc(const CdaMsg& peer_cda, Bytes charged) {
  PocMsg m;
  m.plan = plan_echo_;
  m.sender = config_.role;
  m.seq = ++seq_;
  m.round = static_cast<std::uint32_t>(round_);
  m.charged = charged;
  m.peer_cda = peer_cda.encode();
  if (config_.role == PartyRole::kEdgeVendor) {
    m.nonce_edge = own_nonce_;
    m.nonce_operator = peer_cda.nonce;
  } else {
    m.nonce_edge = peer_cda.nonce;
    m.nonce_operator = own_nonce_;
  }
  m.sign(keys_);
  return m;
}

Message ProtocolParty::start() {
  if (state_ != ProtocolState::kIdle) {
    throw std::logic_error{"ProtocolParty::start called twice"};
  }
  round_ = 1;
  transition(ProtocolState::kNegotiating);
  return track(Message{make_cdr()});
}

std::optional<Message> ProtocolParty::on_message(const Message& msg) {
  if (state_ == ProtocolState::kDone || state_ == ProtocolState::kFailed) {
    return std::nullopt;
  }
  if (m_wire_bytes_received_ != nullptr) {
    m_wire_bytes_received_->inc(encode_message(msg).size());
  }
  return std::visit(
      [this](const auto& m) -> std::optional<Message> {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, CdrMsg>) return handle_cdr(m);
        if constexpr (std::is_same_v<T, CdaMsg>) return handle_cda(m);
        if constexpr (std::is_same_v<T, PocMsg>) return handle_poc(m);
      },
      msg);
}

std::optional<Message> ProtocolParty::handle_cdr(const CdrMsg& msg) {
  if (msg.sender != peer_of(config_.role)) {
    return fail(ProtocolError::kRoleConfusion);
  }
  if (!msg.verify(peer_key_)) return fail(ProtocolError::kBadSignature);
  if (!(msg.plan == plan_echo_) || msg.direction != config_.direction) {
    return fail(ProtocolError::kPlanMismatch);
  }
  if (msg.seq <= last_peer_seq_) return fail(ProtocolError::kReplayedSequence);
  last_peer_seq_ = msg.seq;

  if (state_ == ProtocolState::kIdle) {
    round_ = 1;
    transition(ProtocolState::kNegotiating);
  } else {
    // A CDR while negotiating means the peer rejected our last claim and
    // is re-claiming: a new round begins. Tighten our bounds with our
    // rejected claim and the peer's re-claim (Algorithm 1 line 12 — the
    // constraint is "visible to both" sides), so our subsequent claims
    // ratchet toward agreement instead of resampling the same range.
    tighten_bounds(own_claim_, msg.claim);
    ++round_;
    if (round_ > config_.max_rounds) {
      return fail(ProtocolError::kExceededMaxRounds);
    }
  }

  // Evaluate the peer's claim: bounds compliance plus local cross-check.
  const bool out_of_bounds = !bounds_.contains(msg.claim);
  const bool rejected =
      out_of_bounds || strategy_.reject_peer(msg.claim, config_.view);
  if (!rejected) {
    return track(Message{make_cda(msg)});
  }
  // Reject: tighten bounds using both claims of this round and re-claim.
  const Bytes my_claim = next_own_claim();
  tighten_bounds(my_claim, msg.claim);
  ++round_;
  if (round_ > config_.max_rounds) {
    return fail(ProtocolError::kExceededMaxRounds);
  }
  return track(Message{make_cdr()});
}

std::optional<Message> ProtocolParty::handle_cda(const CdaMsg& msg) {
  if (state_ != ProtocolState::kNegotiating || last_sent_cdr_.empty()) {
    return fail(ProtocolError::kProtocolViolation);
  }
  if (msg.sender != peer_of(config_.role)) {
    return fail(ProtocolError::kRoleConfusion);
  }
  if (!msg.verify(peer_key_)) return fail(ProtocolError::kBadSignature);
  if (!(msg.plan == plan_echo_) || msg.direction != config_.direction) {
    return fail(ProtocolError::kPlanMismatch);
  }
  if (msg.seq <= last_peer_seq_) return fail(ProtocolError::kReplayedSequence);
  last_peer_seq_ = msg.seq;
  // The CDA must countersign exactly the CDR we sent.
  if (msg.peer_cdr != last_sent_cdr_) {
    return fail(ProtocolError::kEmbeddedMismatch);
  }

  const bool out_of_bounds = !bounds_.contains(msg.claim);
  const bool rejected =
      out_of_bounds || strategy_.reject_peer(msg.claim, config_.view);
  if (!rejected) {
    const Bytes charged = charging::charged_volume(
        own_claim_, msg.claim, config_.plan.loss_weight);
    PocMsg poc = make_poc(msg, charged);
    charged_ = charged;
    poc_ = poc;
    transition(ProtocolState::kDone);
    return track(Message{std::move(poc)});
  }
  tighten_bounds(own_claim_, msg.claim);
  ++round_;
  if (round_ > config_.max_rounds) {
    return fail(ProtocolError::kExceededMaxRounds);
  }
  return track(Message{make_cdr()});
}

std::optional<Message> ProtocolParty::handle_poc(const PocMsg& msg) {
  if (state_ != ProtocolState::kNegotiating || last_sent_cda_.empty()) {
    return fail(ProtocolError::kProtocolViolation);
  }
  if (msg.sender != peer_of(config_.role)) {
    return fail(ProtocolError::kRoleConfusion);
  }
  if (!msg.verify(peer_key_)) return fail(ProtocolError::kBadSignature);
  if (!(msg.plan == plan_echo_)) return fail(ProtocolError::kPlanMismatch);
  if (msg.peer_cda != last_sent_cda_) {
    return fail(ProtocolError::kEmbeddedMismatch);
  }
  // Recompute the charge from the two claims we know were exchanged: our
  // CDA claim and the peer's CDR claim (inside our CDA's embedded copy).
  const CdrMsg peer_cdr =
      CdrMsg::decode(CdaMsg::decode(last_sent_cda_).peer_cdr);
  const Bytes expected = charging::charged_volume(
      own_claim_, peer_cdr.claim, config_.plan.loss_weight);
  if (expected != msg.charged) return fail(ProtocolError::kChargeMismatch);

  charged_ = msg.charged;
  poc_ = msg;
  transition(ProtocolState::kDone);
  return std::nullopt;
}

int run_exchange(ProtocolParty& initiator, ProtocolParty& responder) {
  int messages = 0;
  std::optional<Message> in_flight = initiator.start();
  ++messages;
  ProtocolParty* receiver = &responder;
  ProtocolParty* sender = &initiator;
  while (in_flight.has_value()) {
    std::optional<Message> reply = receiver->on_message(*in_flight);
    std::swap(receiver, sender);
    in_flight = std::move(reply);
    if (in_flight.has_value()) ++messages;
    if (messages > 4 * (initiator.rounds() + responder.rounds() + 8)) {
      break;  // defensive: no legal exchange is this long
    }
  }
  return messages;
}

}  // namespace tlc::core
