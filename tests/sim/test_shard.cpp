// ShardedRunner tests: window/barrier mechanics, the cross-shard merge
// order, the post() lookahead contract, and serial/parallel equivalence.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/units.hpp"
#include "sim/shard.hpp"

namespace tlc::sim {
namespace {

using std::chrono::milliseconds;

TimePoint at_ms(std::int64_t ms) { return kTimeZero + milliseconds{ms}; }

TEST(ShardedRunner, RejectsNonPositiveLookahead) {
  EXPECT_THROW(ShardedRunner({2, Duration::zero(), false}),
               std::invalid_argument);
  EXPECT_THROW(ShardedRunner({2, milliseconds{-1}, false}),
               std::invalid_argument);
}

TEST(ShardedRunner, ClampsShardCountToOne) {
  ShardedRunner runner{{0, milliseconds{5}, false}};
  EXPECT_EQ(runner.shards(), 1u);
}

TEST(ShardedRunner, RunsLocalEventsToDeadline) {
  ShardedRunner runner{{2, milliseconds{5}, false}};
  std::vector<int> order;
  runner.shard(0).schedule_at(at_ms(3), InlineCallback{[&] {
    order.push_back(0);
  }});
  runner.shard(1).schedule_at(at_ms(1), InlineCallback{[&] {
    order.push_back(1);
  }});
  runner.shard(1).schedule_at(at_ms(7), InlineCallback{[&] {
    order.push_back(2);
  }});
  const std::uint64_t ran = runner.run_until(at_ms(20));
  EXPECT_EQ(ran, 3u);
  EXPECT_EQ(runner.events_dispatched(), 3u);
  ASSERT_EQ(order.size(), 3u);
  // Shards are causally independent inside a window: serial mode runs
  // shard 0's whole window before shard 1's, so cross-shard wall-clock
  // interleaving is shard-ordered (0 before 1, 1), NOT global-time
  // ordered. Only per-shard order is a guarantee — which is why fleet
  // state must be per-shard, never shared across shards.
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(ShardedRunner, EventAtExactDeadlineRuns) {
  ShardedRunner runner{{1, milliseconds{5}, false}};
  bool ran = false;
  runner.shard(0).schedule_at(at_ms(10), InlineCallback{[&] { ran = true; }});
  runner.run_until(at_ms(10));
  EXPECT_TRUE(ran);
}

TEST(ShardedRunner, CrossShardMessageDeliveredAtLatency) {
  ShardedRunner runner{{2, milliseconds{5}, false}};
  std::vector<std::int64_t> delivered_ms;
  runner.shard(0).schedule_at(at_ms(2), InlineCallback{[&] {
    // Post from inside an event on shard 0: delivery honours the
    // lookahead (2 + 5 = 7ms).
    runner.post(0, 1, at_ms(2) + runner.lookahead(), 1,
                InlineCallback{[&] { delivered_ms.push_back(7); }});
  }});
  runner.run_until(at_ms(20));
  ASSERT_EQ(delivered_ms.size(), 1u);
  EXPECT_EQ(delivered_ms[0], 7);
  EXPECT_EQ(runner.messages_posted(), 1u);
}

TEST(ShardedRunner, MergeOrdersSameTimeMessagesByKey) {
  // Three shards all post to shard 0 for the same delivery instant; the
  // merge must order them by key, not by source shard index.
  ShardedRunner runner{{4, milliseconds{5}, false}};
  std::vector<int> order;
  const TimePoint deliver = at_ms(10);
  for (std::uint32_t src = 1; src < 4; ++src) {
    const std::uint64_t key = 4 - src;  // shard 1 → key 3, shard 3 → key 1
    runner.shard(src).schedule_at(
        at_ms(1), InlineCallback{[&runner, &order, src, key, deliver] {
          runner.post(src, 0, deliver, key, InlineCallback{[&order, key] {
            order.push_back(static_cast<int>(key));
          }});
        }});
  }
  runner.run_until(at_ms(20));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

TEST(ShardedRunner, SerialAndParallelByteIdentical) {
  // The same ping-pong workload, serial vs parallel: identical event
  // counts and identical delivery transcript.
  const auto run = [](bool parallel) {
    ShardedRunner runner{{4, milliseconds{5}, parallel}};
    runner.reserve(64, 64);
    // Each shard posts one message to the next shard; log[dst] is only
    // ever written by dst's own events, so parallel mode stays race-free.
    std::vector<std::vector<std::uint64_t>> log(4);
    for (std::uint32_t s = 0; s < 4; ++s) {
      runner.shard(s).schedule_at(
          at_ms(1 + s), InlineCallback{[&runner, &log, s] {
            const std::uint32_t dst = (s + 1) % 4;
            runner.post(s, dst, at_ms(1 + s) + runner.lookahead(), s,
                        InlineCallback{[&log, dst, s] {
                          log[dst].push_back(s);
                        }});
          }});
    }
    runner.run_until(at_ms(50));
    std::uint64_t fold = runner.events_dispatched();
    for (const auto& l : log) {
      fold = fold * 31 + l.size();
      for (const std::uint64_t v : l) fold = fold * 31 + v;
    }
    return fold;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(ShardedRunner, WindowCountIndependentOfShardCount) {
  // Windows advance on the global clock; the schedule of barriers depends
  // only on lookahead and deadline.
  const auto windows = [](std::uint32_t shards) {
    ShardedRunner runner{{shards, milliseconds{5}, false}};
    runner.shard(0).schedule_at(at_ms(1), InlineCallback{[] {}});
    runner.run_until(at_ms(20));
    return runner.windows_run();
  };
  EXPECT_EQ(windows(1), windows(4));
}

TEST(ShardedRunner, ReserveThenRunKeepsResults) {
  ShardedRunner runner{{2, milliseconds{5}, true}};
  runner.reserve(1024, 1024);
  // Per-shard tallies: shard workers run concurrently in parallel mode.
  std::uint64_t hits[2] = {0, 0};
  for (int i = 0; i < 100; ++i) {
    const auto s = static_cast<std::uint32_t>(i % 2);
    runner.shard(s).schedule_at(at_ms(i),
                                InlineCallback{[&hits, s] { ++hits[s]; }});
  }
  runner.run_until(at_ms(200));
  EXPECT_EQ(hits[0] + hits[1], 100u);
}

}  // namespace
}  // namespace tlc::sim
