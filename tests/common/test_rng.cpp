#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tlc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{1234};
  Rng b{1234};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng{7};
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng{99};
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const std::uint64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng{11};
  EXPECT_EQ(rng.uniform_int(5, 5), 5u);
  EXPECT_EQ(rng.uniform_int(9, 2), 9u);  // inverted → lo
}

TEST(Rng, ChanceExtremes) {
  Rng rng{3};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng{42};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng{5};
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ExponentialMean) {
  Rng rng{8};
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{77};
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a{77};
  Rng b{77};
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca(), cb());
}

}  // namespace
}  // namespace tlc
