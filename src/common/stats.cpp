#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace tlc {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleSet::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) {
    throw std::logic_error{"SampleSet::percentile on empty set"};
  }
  sort_if_needed();
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const double rank =
      p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double SampleSet::min() const {
  if (samples_.empty()) {
    throw std::logic_error{"SampleSet::min on empty set"};
  }
  sort_if_needed();
  return samples_.front();
}

double SampleSet::max() const {
  if (samples_.empty()) {
    throw std::logic_error{"SampleSet::max on empty set"};
  }
  sort_if_needed();
  return samples_.back();
}

double SampleSet::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> SampleSet::cdf_points(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points < 2) return out;
  sort_if_needed();
  out.reserve(points);
  const double lo = samples_.front();
  const double hi = samples_.back();
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    out.emplace_back(x, cdf_at(x));
  }
  return out;
}

}  // namespace tlc
