// Seeded wire-bounds violations: unchecked byte handling in wire code
// outside the codec. Lexed by the lint tests, never compiled.
#include <cstdint>
#include <cstring>
#include <vector>

namespace tlc::wire {

std::uint32_t peek_length(const std::vector<std::uint8_t>& buf) {
  std::uint32_t v = 0;
  std::memcpy(&v, buf.data() + 4, sizeof v);
  return v;
}

const std::uint16_t* alias_words(const std::vector<std::uint8_t>& buf) {
  return reinterpret_cast<const std::uint16_t*>(buf.data());
}

std::uint8_t first_byte(const std::vector<std::uint8_t>& buf) {
  return buf.data()[0];
}

}  // namespace tlc::wire
