// Figure 12 — "Overall charging gap (c = 0.5)".
//
// CDFs of the per-cycle charging gap (MB/hr) for Legacy 4G/5G, TLC-random,
// and TLC-optimal, one panel per application, over a grid of congestion ×
// intermittency × seed conditions (the paper's dataset spans the same
// condition sweep, Fig. 11c).
//
// Expected shape per panel: the TLC-optimal CDF hugs the y-axis (gaps near
// zero), TLC-random sits between it and legacy, legacy has the long tail.
#include <cstdio>

#include "dataset.hpp"
#include "exp/metrics.hpp"

using namespace tlc;
using namespace tlc::exp;

int main(int argc, char** argv) {
  const SweepOptions sweep = sweep_options_from_cli(argc, argv);
  constexpr AppKind kApps[] = {AppKind::kWebcamRtsp, AppKind::kWebcamUdp,
                               AppKind::kVridge, AppKind::kGaming};
  constexpr char kPanel[] = {'a', 'b', 'c', 'd'};

  for (std::size_t i = 0; i < std::size(kApps); ++i) {
    std::printf("## Figure 12%c: %s\n\n", kPanel[i],
                std::string(to_string(kApps[i])).c_str());
    const auto results = run_grid(kApps[i], {}, sweep);
    for (Scheme scheme :
         {Scheme::kLegacy, Scheme::kTlcRandom, Scheme::kTlcOptimal}) {
      const GapSamples gaps = collect_gaps(results, scheme);
      print_cdf(std::string(to_string(scheme)) + " gap (MB/hr)",
                gaps.mb_per_hr);
      std::printf("  mean %.2f MB/hr, p95 %.2f MB/hr\n\n",
                  gaps.mb_per_hr.mean(), gaps.mb_per_hr.percentile(95));
    }
  }
  return 0;
}
