#include "epc/ofcs.hpp"

namespace tlc::epc {

Ofcs::Ofcs(charging::DataPlan plan, core::PublicVerifier* verifier)
    : plan_(std::move(plan)), verifier_(verifier) {
  plan_.validate();
}

void Ofcs::set_observability(obs::Obs* obs) {
  obs_ = obs;
  if (obs_ == nullptr) {
    m_legacy_cdrs_ = nullptr;
    m_pocs_verified_ = nullptr;
    m_pocs_rejected_ = nullptr;
    return;
  }
  m_legacy_cdrs_ = &obs_->metrics.counter("epc.ofcs.legacy_cdrs");
  m_pocs_verified_ = &obs_->metrics.counter("epc.ofcs.pocs_verified");
  m_pocs_rejected_ = &obs_->metrics.counter("epc.ofcs.pocs_rejected");
}

void Ofcs::ingest_legacy_cdr(std::uint64_t cycle, const wire::LegacyCdr& cdr,
                             charging::Direction billed_direction) {
  const Bytes volume = billed_direction == charging::Direction::kUplink
                           ? cdr.uplink_volume
                           : cdr.downlink_volume;
  cycles_[cycle].legacy = volume;
  if (m_legacy_cdrs_ != nullptr) m_legacy_cdrs_->inc();
  TLC_TRACE_EVENT(obs_, "epc.ofcs", "legacy_cdr", obs::TraceLevel::kDebug,
                  obs::field("cycle", cycle), obs::field("bytes", volume));
  recompute_cumulative();
}

core::VerifyResult Ofcs::ingest_poc(std::span<const std::uint8_t> poc_bytes) {
  if (verifier_ == nullptr) {
    return core::VerifyResult::kMalformed;  // no audit path configured
  }
  core::VerifiedCharge charge;
  const core::VerifyResult result = verifier_->verify(poc_bytes, &charge);
  if (result == core::VerifyResult::kOk) {
    cycles_[charge.cycle_index].verified = charge.charged;
    if (m_pocs_verified_ != nullptr) m_pocs_verified_->inc();
    TLC_TRACE_EVENT(obs_, "epc.ofcs", "poc", obs::TraceLevel::kInfo,
                    obs::field("result", to_string(result)),
                    obs::field("cycle", charge.cycle_index),
                    obs::field("bytes", charge.charged));
    recompute_cumulative();
  } else {
    if (m_pocs_rejected_ != nullptr) m_pocs_rejected_->inc();
    TLC_TRACE_EVENT(obs_, "epc.ofcs", "poc", obs::TraceLevel::kWarn,
                    obs::field("result", to_string(result)));
  }
  return result;
}

void Ofcs::recompute_cumulative() {
  Bytes total;
  for (const auto& [cycle, bill] : cycles_) {
    if (bill.verified.has_value()) {
      total += *bill.verified;
    } else if (bill.legacy.has_value()) {
      total += *bill.legacy;
    }
  }
  cumulative_ = total;
}

BillingStatement Ofcs::statement() const {
  BillingStatement out;
  Bytes running;
  for (const auto& [cycle, bill] : cycles_) {
    BillLine line;
    line.cycle = cycle;
    if (bill.verified.has_value()) {
      line.volume = *bill.verified;
      line.source = BillSource::kVerifiedPoc;
    } else if (bill.legacy.has_value()) {
      line.volume = *bill.legacy;
      line.source = BillSource::kLegacyCdr;
    } else {
      continue;
    }
    line.amount = line.volume.megabytes() * plan_.price_per_mb;
    running += line.volume;
    line.throttled_after = running > plan_.quota;
    out.lines.push_back(line);
    out.total += line.amount;
    out.total_volume += line.volume;
  }
  return out;
}

}  // namespace tlc::epc
