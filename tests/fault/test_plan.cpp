#include "fault/plan.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tlc::fault {
namespace {

TEST(FaultPlan, GenerationIsDeterministic) {
  for (std::uint64_t id = 0; id < 32; ++id) {
    const FaultPlan a = make_random_plan(id, 42);
    const FaultPlan b = make_random_plan(id, 42);
    EXPECT_EQ(a.describe(), b.describe()) << "plan " << id;
  }
}

TEST(FaultPlan, DistinctIdsAndSeedsDiverge) {
  std::set<std::string> seen;
  for (std::uint64_t id = 0; id < 16; ++id) {
    seen.insert(make_random_plan(id, 1).describe());
    seen.insert(make_random_plan(id, 2).describe());
  }
  EXPECT_EQ(seen.size(), 32u);
}

TEST(FaultPlan, MagnitudesStayWithinInvariantPreservingBounds) {
  for (std::uint64_t id = 0; id < 200; ++id) {
    const FaultPlan p = make_random_plan(id, 7);
    const double measured_start = p.cycle_length_s;
    const double measured_end = p.cycle_length_s * (1.0 + p.cycles);
    if (p.dl_duplication) {
      // Duplicated volume must stay far below the 3% cross-check slack.
      EXPECT_LE(p.dl_duplication->max_packets, 64u);
      EXPECT_LE(p.dl_duplication->copies, 2u);
    }
    if (p.counter_check_timeout) {
      // Retry + 2 s OFCS jitter ≤ 2.5% of the cycle (see plan.cpp).
      EXPECT_LE(p.counter_check_timeout->retry_after_s, 4.0);
      EXPECT_LE(p.counter_check_timeout->count, 2u);
    }
    if (p.dl_reorder) {
      EXPECT_LE(p.dl_reorder->max_delay_ms, 50.0);
    }
    for (const auto& burst : {p.dl_burst_drop, p.ul_burst_drop}) {
      if (!burst) continue;
      EXPECT_GE(burst->start_s, measured_start);
      EXPECT_LE(burst->start_s + burst->duration_s, measured_end);
    }
    if (p.handover_kill) {
      EXPECT_GT(p.handover_period_s, 0.0)
          << "handover kill requires mobility";
    }
    if (p.exchange.edge == ClaimStyle::kGreedy) {
      EXPECT_GE(p.exchange.edge_factor, 0.8);
      EXPECT_LE(p.exchange.edge_factor, 1.0);
    }
    if (p.exchange.op == ClaimStyle::kGreedy) {
      EXPECT_GE(p.exchange.op_factor, 1.0);
      EXPECT_LE(p.exchange.op_factor, 1.25);
    }
  }
}

TEST(FaultPlan, DescribeIsCanonicalJson) {
  const FaultPlan p = make_random_plan(3, 9);
  const std::string json = p.describe();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"id\":3"), std::string::npos);
  EXPECT_NE(json.find("\"exchange\""), std::string::npos);
}

TEST(FaultPlan, EveryFaultTypeAppearsAcrossAPool) {
  bool burst = false, dup = false, reorder = false, stall = false,
       cc = false, kill = false, greedy = false, oscillating = false;
  for (std::uint64_t id = 0; id < 200; ++id) {
    const FaultPlan p = make_random_plan(id, 1);
    burst |= p.dl_burst_drop.has_value() || p.ul_burst_drop.has_value();
    dup |= p.dl_duplication.has_value();
    reorder |= p.dl_reorder.has_value();
    stall |= p.gateway_stall.has_value();
    cc |= p.counter_check_timeout.has_value();
    kill |= p.handover_kill.has_value();
    greedy |= p.exchange.edge == ClaimStyle::kGreedy ||
              p.exchange.op == ClaimStyle::kGreedy;
    oscillating |= p.exchange.edge == ClaimStyle::kOscillating ||
                   p.exchange.op == ClaimStyle::kOscillating;
  }
  EXPECT_TRUE(burst && dup && reorder && stall && cc && kill && greedy &&
              oscillating);
}

}  // namespace
}  // namespace tlc::fault
