#include "tlc/timed_exchange.hpp"

namespace tlc::core {
namespace {

struct Exchange {
  sim::Scheduler& sched;
  ProtocolParty& initiator;
  ProtocolParty& responder;
  TimedExchangeConfig config;
  TimedExchangeResult result;
  TimePoint started;
  /// The exchange is half-duplex lockstep — exactly one message is ever in
  /// transit — so it parks here instead of being copied into each scheduler
  /// callback: the Message variant (~150 B of nested signature vectors)
  /// would blow the InlineCallback capture budget, and moving it once is
  /// cheaper than copying it twice anyway.
  Message in_flight;
  /// Span of the exchange and of the message currently in transit.
  obs::SpanContext span;
  obs::SpanContext msg_span;

  Duration crypto_for(const ProtocolParty& party) const {
    return &party == &initiator ? config.initiator_crypto
                                : config.responder_crypto;
  }

  void observe_crypto(Duration d) {
    if (config.obs != nullptr) {
      config.obs->metrics.log_histogram("tlc.exchange.crypto_op_ns")
          .observe_duration(d);
    }
  }

  /// `sender` produced `msg`; deliver it to the other side after the
  /// sender's processing time plus the propagation latency.
  void dispatch(ProtocolParty& sender, Message msg) {
    ++result.messages;
    result.crypto_time += crypto_for(sender);
    result.network_time += config.one_way_latency;
    observe_crypto(crypto_for(sender));
    ProtocolParty& receiver =
        &sender == &initiator ? responder : initiator;
    in_flight = std::move(msg);
    if (config.obs != nullptr && span.valid()) {
      msg_span = config.obs->spans.child_at(
          sched.now(), "tlc.exchange", "msg", span,
          {obs::field("n", result.messages)});
    }
    sched.schedule_after(
        crypto_for(sender) + config.one_way_latency, [this, &receiver] {
          if (config.obs != nullptr && msg_span.valid()) {
            config.obs->spans.end_at(sched.now(), "tlc.exchange", msg_span);
            msg_span = {};
          }
          // Receiver-side verification/decision time.
          result.crypto_time += crypto_for(receiver);
          observe_crypto(crypto_for(receiver));
          sched.schedule_after(crypto_for(receiver), [this, &receiver] {
            const Message m = std::move(in_flight);
            std::optional<Message> reply = receiver.on_message(m);
            if (reply.has_value()) {
              dispatch(receiver, std::move(*reply));
            }
          });
        });
  }
};

}  // namespace

TimedExchangeResult run_timed_exchange(sim::Scheduler& sched,
                                       ProtocolParty& initiator,
                                       ProtocolParty& responder,
                                       const TimedExchangeConfig& config) {
  Exchange exchange{sched,      initiator, responder, config,
                    {},         sched.now(), {},      {},
                    {}};
  if (config.obs != nullptr && config.parent.valid()) {
    exchange.span = config.obs->spans.child_at(
        sched.now(), "tlc.exchange", "timed_exchange", config.parent);
  }
  exchange.dispatch(initiator, initiator.start());
  sched.run();

  TimedExchangeResult result = exchange.result;
  result.completed = initiator.state() == ProtocolState::kDone &&
                     responder.state() == ProtocolState::kDone;
  result.elapsed = sched.now() - exchange.started;
  result.rounds = initiator.rounds();
  result.charged = initiator.charged();
  if (config.obs != nullptr) {
    obs::MetricsRegistry& m = config.obs->metrics;
    m.log_histogram("tlc.exchange.duration_ns")
        .observe_duration(result.elapsed);
    if (result.rounds > 0) {
      m.log_histogram("tlc.exchange.round_ns")
          .observe_duration(result.elapsed / result.rounds);
    }
    m.log_histogram("tlc.exchange.msg_transit_ns")
        .observe_duration(config.one_way_latency);
  }
  if (config.obs != nullptr && exchange.span.valid()) {
    config.obs->spans.end_at(
        sched.now(), "tlc.exchange", exchange.span,
        {obs::field("completed", result.completed),
         obs::field("rounds", result.rounds),
         obs::field("messages", result.messages)});
  }
  return result;
}

}  // namespace tlc::core
