// Quickstart: one charging cycle, negotiated and publicly verified.
//
// Shows the minimal TLC flow without the network simulator:
//   1. both parties agree on a data plan (c, T) and exchange public keys;
//   2. at cycle end each party assembles its local usage view;
//   3. they run the signed CDR → CDA → PoC exchange (Algorithm 1 + §5.3);
//   4. an independent third party verifies the Proof-of-Charging.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "common/format.hpp"
#include "tlc/protocol.hpp"
#include "tlc/verifier.hpp"

using namespace tlc;

int main() {
  std::printf("=== TLC quickstart ===\n\n");

  // --- Setup (§5.3.1): the data plan and the key pairs -------------------
  charging::DataPlan plan;
  plan.loss_weight = 0.5;                      // c: half the lost data billed
  plan.cycle_length = std::chrono::hours{1};   // T

  const auto edge_keys =
      crypto::KeyPair::generate(crypto::KeyStrength::kRsa1024);
  const auto operator_keys =
      crypto::KeyPair::generate(crypto::KeyStrength::kRsa1024);
  std::printf("edge vendor key   : %s\n",
              edge_keys.public_key().fingerprint().c_str());
  std::printf("cellular operator : %s\n\n",
              operator_keys.public_key().fingerprint().c_str());

  // --- One hour of webcam streaming happened; monitors observed: ---------
  // The edge's device app sent 778.5 MB; the operator's gateway received
  // 720.0 MB — 58.5 MB died on the air (congestion + weak coverage).
  const core::LocalView edge_view{Bytes{778'500'000}, Bytes{720'200'000}};
  const core::LocalView operator_view{Bytes{778'100'000}, Bytes{720'000'000}};

  // --- Negotiation (Algorithm 1 over the signed protocol, §5.3.2) --------
  const auto edge_strategy = core::make_optimal_edge();
  const auto operator_strategy = core::make_optimal_operator();

  core::ProtocolParty::Config edge_cfg;
  edge_cfg.role = core::PartyRole::kEdgeVendor;
  edge_cfg.plan = plan;
  edge_cfg.cycle = plan.cycle_at(kTimeZero);
  edge_cfg.view = edge_view;
  core::ProtocolParty::Config op_cfg = edge_cfg;
  op_cfg.role = core::PartyRole::kCellularOperator;
  op_cfg.view = operator_view;

  core::ProtocolParty edge{edge_cfg, *edge_strategy, edge_keys,
                           operator_keys.public_key(), Rng{1}};
  core::ProtocolParty op{op_cfg, *operator_strategy, operator_keys,
                         edge_keys.public_key(), Rng{2}};

  const int messages = core::run_exchange(op, edge);
  std::printf("negotiation: %d messages, %d round(s)\n", messages,
              op.rounds());
  std::printf("agreed charge x = %s  (edge claimed %s, operator %s)\n",
              format_bytes(op.charged()).c_str(),
              format_bytes(edge_view.received_estimate).c_str(),
              format_bytes(operator_view.sent_estimate).c_str());

  // --- Public verification (Algorithm 2, §5.3.3) --------------------------
  core::PublicVerifier verifier{edge_keys.public_key(),
                                operator_keys.public_key(), plan};
  core::VerifiedCharge audited;
  const core::VerifyResult result =
      verifier.verify(op.poc()->encode(), &audited);
  std::printf("\npublic verifier: %s\n", core::to_string(result));
  std::printf("  audited charge : %s (cycle %llu, c = %.2f)\n",
              format_bytes(audited.charged).c_str(),
              static_cast<unsigned long long>(audited.cycle_index),
              audited.loss_weight);
  std::printf("  PoC size       : %zu bytes\n", op.poc()->encode().size());

  // A replayed PoC is caught:
  std::printf("  replay attempt : %s\n",
              core::to_string(verifier.verify(op.poc()->encode())));
  return result == core::VerifyResult::kOk ? 0 : 1;
}
