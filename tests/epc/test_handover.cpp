#include "epc/handover.hpp"

#include <gtest/gtest.h>

namespace tlc::epc {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

charging::DataPlan plan_300s() {
  charging::DataPlan plan;
  plan.cycle_length = seconds{300};
  return plan;
}

BaseStationConfig clean_cell() {
  BaseStationConfig cfg;
  cfg.radio.base_rss = Dbm{-80.0};
  cfg.radio.shadow_sigma_db = 0.0;
  cfg.radio.baseline_loss = 0.0;
  cfg.radio.dip_rate_per_s = 0.0;
  return cfg;
}

net::Packet packet(std::uint64_t id, std::uint64_t size = 1000) {
  net::Packet p;
  p.id = id;
  p.size = Bytes{size};
  return p;
}

struct Fixture : ::testing::Test {
  sim::Scheduler sched;
  EdgeDevice device{plan_300s(), sim::NodeClock{}};
  std::unique_ptr<BaseStation> cell_a;
  std::unique_ptr<BaseStation> cell_b;
  std::uint64_t handover_drops = 0;
  std::uint64_t delivered = 0;

  void SetUp() override {
    cell_a = std::make_unique<BaseStation>(sched, clean_cell(), Rng{1},
                                           device, plan_300s(),
                                           sim::NodeClock{});
    cell_b = std::make_unique<BaseStation>(sched, clean_cell(), Rng{2},
                                           device, plan_300s(),
                                           sim::NodeClock{});
    for (BaseStation* cell : {cell_a.get(), cell_b.get()}) {
      cell->set_downlink_drop_observer(
          [this](const net::Packet&, net::DropCause cause, TimePoint) {
            if (cause == net::DropCause::kHandover) ++handover_drops;
          });
      cell->set_downlink_sink(
          [this](const net::Packet&, TimePoint) { ++delivered; });
      cell->start();
    }
  }
};

TEST_F(Fixture, RequiresTwoCells) {
  EXPECT_THROW(
      (HandoverController{sched, HandoverController::Config{},
                          std::vector<BaseStation*>{cell_a.get()}}),
      std::invalid_argument);
}

TEST_F(Fixture, StartsOnCellZeroWithOthersSuspended) {
  HandoverController ho{sched, HandoverController::Config{},
                        {cell_a.get(), cell_b.get()}};
  EXPECT_EQ(ho.serving_index(), 0u);
  EXPECT_FALSE(cell_a->suspended());
  EXPECT_TRUE(cell_b->suspended());
}

TEST_F(Fixture, DeliversThroughServingCell) {
  HandoverController ho{sched, HandoverController::Config{},
                        {cell_a.get(), cell_b.get()}};
  ho.route_downlink(packet(1));
  sched.run_until(kTimeZero + seconds{1});
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(handover_drops, 0u);
}

TEST_F(Fixture, HandoverSwitchesServingCell) {
  HandoverController ho{sched, HandoverController::Config{},
                        {cell_a.get(), cell_b.get()}};
  ho.execute_handover();
  EXPECT_EQ(ho.serving_index(), 1u);
  EXPECT_TRUE(cell_a->suspended());
  // Target still completing admission until the interruption elapses.
  EXPECT_TRUE(cell_b->suspended());
  sched.run_until(kTimeZero + milliseconds{200});
  EXPECT_FALSE(cell_b->suspended());
  // Traffic flows again through the new cell.
  ho.route_downlink(packet(1));
  sched.run_until(kTimeZero + seconds{1});
  EXPECT_EQ(delivered, 1u);
}

TEST_F(Fixture, TrafficDuringInterruptionIsLost) {
  HandoverController ho{sched, HandoverController::Config{},
                        {cell_a.get(), cell_b.get()}};
  ho.execute_handover();
  ho.route_downlink(packet(1));  // lands in the interruption window
  ho.route_downlink(packet(2));
  sched.run_until(kTimeZero + seconds{1});
  EXPECT_EQ(handover_drops, 2u);
  EXPECT_EQ(delivered, 0u);
}

TEST_F(Fixture, BufferedDataAtSourceCellIsDiscarded) {
  // Slow source cell so packets sit in its queue at handover time.
  BaseStationConfig slow = clean_cell();
  slow.downlink.capacity = BitRate::from_kbps(8);  // 1 KB/s
  auto slow_cell = std::make_unique<BaseStation>(
      sched, slow, Rng{3}, device, plan_300s(), sim::NodeClock{});
  std::uint64_t drops = 0;
  slow_cell->set_downlink_drop_observer(
      [&drops](const net::Packet&, net::DropCause cause, TimePoint) {
        if (cause == net::DropCause::kHandover) ++drops;
      });
  slow_cell->start();

  HandoverController ho{sched, HandoverController::Config{},
                        {slow_cell.get(), cell_b.get()}};
  for (std::uint64_t i = 0; i < 5; ++i) ho.route_downlink(packet(i));
  ho.execute_handover();  // flushes the source queue: no X2 forwarding
  EXPECT_GE(drops, 4u);
}

TEST_F(Fixture, PeriodicHandoversRun) {
  HandoverController::Config cfg;
  cfg.period = seconds{5};
  cfg.interruption = milliseconds{50};
  HandoverController ho{sched, cfg, {cell_a.get(), cell_b.get()}};
  ho.start();
  sched.run_until(kTimeZero + seconds{21});
  EXPECT_EQ(ho.handover_count(), 4u);
  EXPECT_EQ(ho.serving_index(), 0u);  // even count → back on cell 0
}

TEST_F(Fixture, HandoverDoesNotCloseGatewaySession) {
  // The charging-relevant distinction from a detach: the gateway keeps
  // charging across handovers (no session callback fires).
  bool session_changed = false;
  cell_a->set_session_callback(
      [&session_changed](bool, TimePoint) { session_changed = true; });
  HandoverController ho{sched, HandoverController::Config{},
                        {cell_a.get(), cell_b.get()}};
  ho.execute_handover();
  sched.run_until(kTimeZero + seconds{1});
  EXPECT_FALSE(session_changed);
}

TEST_F(Fixture, MobilityCreatesChargingGap) {
  // End-to-end: periodic handovers under continuous streaming leave a
  // charged-but-lost residue (the [10] roaming/mobility gap).
  HandoverController::Config cfg;
  cfg.period = seconds{2};
  cfg.interruption = milliseconds{100};
  HandoverController ho{sched, cfg, {cell_a.get(), cell_b.get()}};
  ho.start();
  Bytes sent;
  for (std::uint64_t i = 0; i < 200; ++i) {
    sched.schedule_at(kTimeZero + milliseconds{i * 50},
                      [&ho, &sent, i] {
                        sent += Bytes{1000};
                        ho.route_downlink(packet(i));
                      });
  }
  sched.run_until(kTimeZero + seconds{12});
  EXPECT_GT(handover_drops, 0u);
  EXPECT_LT(delivered, 200u);
  EXPECT_EQ(delivered + handover_drops, 200u);  // conservation
}

}  // namespace
}  // namespace tlc::epc
