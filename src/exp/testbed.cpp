#include "exp/testbed.hpp"

#include <algorithm>

namespace tlc::exp {
namespace {

constexpr Duration kDisconnectSample = std::chrono::seconds{1};

}  // namespace

Testbed::Testbed(TestbedConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      device_(config_.plan, config_.edge_clock),
      server_(config_.plan, config_.edge_clock),
      gateway_(sched_, config_.plan, config_.operator_clock,
               epc::Imsi::from_number(1113254764805ULL)),
      bs_(sched_, config_.bs, rng_.fork(), device_, config_.plan,
          config_.operator_clock),
      backhaul_up_(sched_, config_.backhaul,
                   [this](const net::Packet& p, TimePoint at) {
                     server_.on_uplink_delivered(p, at);
                   }),
      backhaul_down_(sched_, config_.backhaul,
                     [this](const net::Packet& p, TimePoint) {
                       gateway_.forward_downlink(p);
                     }),
      rrc_(config_.plan, config_.operator_clock) {
  config_.plan.validate();

  // Mobility: instantiate the target cell before wiring, so both cells
  // share the same sinks.
  if (config_.handover_period > Duration::zero()) {
    bs2_ = std::make_unique<epc::BaseStation>(sched_, config_.bs,
                                              rng_.fork(), device_,
                                              config_.plan,
                                              config_.operator_clock);
  }

  // A scenario pushes hundreds of thousands of events; one up-front
  // reservation keeps the heap's early growth off the packet path.
  sched_.reserve(1024);

  // Observability: one registry + trace sink for the whole testbed, with
  // events stamped in sim time. Wire before start() so the scheduler's
  // counters see every event. Both are owned by this testbed instance —
  // nothing observability-related is process-global — which is what lets
  // whole testbeds run concurrently on sweep workers without sharing.
  obs_.trace.set_clock([this] { return sched_.now(); });
  sched_.set_observability(&obs_);
  gateway_.set_observability(&obs_);
  rrc_.set_observability(&obs_);
  backhaul_up_.set_observability(&obs_, "net.backhaul.ul");
  backhaul_down_.set_observability(&obs_, "net.backhaul.dl");
  bs_.set_observability(&obs_, "cell0");
  if (bs2_) bs2_->set_observability(&obs_, "cell1");

  const auto wire_cell = [this](epc::BaseStation& cell) {
    cell.set_uplink_sink([this](const net::Packet& p, TimePoint at) {
      if (p.flow == net::kControlFlow) {
        // Zero-rated settlement signaling: delivered over the air (so it
        // sits in net.ul.delivered_bytes) but never charged — tallied here
        // so the uplink charging-gap identity stays exact.
        obs_.metrics.counter("tlc.settle.ul_delivered_bytes")
            .inc(p.size.count());
        if (control_ul_handler_) control_ul_handler_(p, at);
        return;
      }
      note_truth(charging::Direction::kUplink, /*sent=*/false, p.size, at);
      gateway_.on_uplink_from_enb(p, at);
    });
    cell.set_downlink_sink([this](const net::Packet& p, TimePoint at) {
      if (p.flow == net::kControlFlow) {
        if (control_dl_handler_) control_dl_handler_(p, at);
        return;
      }
      note_truth(charging::Direction::kDownlink, /*sent=*/false, p.size, at);
    });
    cell.set_session_callback([this, &cell](bool attached, TimePoint) {
      // Only the serving cell's radio-link state drives the session; a
      // suspended neighbour's fade must not cut charging.
      if (&cell == &serving_cell()) gateway_.set_session_up(attached);
    });
    cell.set_counter_check_sink(
        [this](const epc::CounterCheckReport& report) {
          rrc_.on_counter_check(report);
        });
  };
  wire_cell(bs_);
  if (bs2_) wire_cell(*bs2_);
  // Downlink chain behind the charging point: gateway → SLA middlebox →
  // base station. Anything the middlebox drops was already charged. The
  // middlebox's drops are funnelled into the shared net.dl drop counters
  // so the charging-gap identity (charged − delivered = Σ per-cause drops)
  // covers every post-charge loss point.
  obs::Counter* const sla_drop_packets =
      &obs_.metrics.counter("net.dl.drop.sla-violation_packets");
  obs::Counter* const sla_drop_bytes =
      &obs_.metrics.counter("net.dl.drop.sla-violation_bytes");
  sla_box_ = std::make_unique<epc::SlaMiddlebox>(
      sched_, epc::SlaMiddlebox::Config{config_.sla_budget}, bs_.downlink(),
      [this](net::Packet p) {
        if (handover_) {
          handover_->route_downlink(std::move(p));
        } else {
          bs_.send_downlink(std::move(p));
        }
      },
      [this, sla_drop_packets, sla_drop_bytes](
          const net::Packet& p, net::DropCause cause, TimePoint) {
        sla_drop_packets->inc();
        sla_drop_bytes->inc(p.size.count());
        TLC_TRACE_EVENT(&obs_, "net.dl", "drop", obs::TraceLevel::kInfo,
                        obs::field("cause", to_string(cause)),
                        obs::field("bytes", p.size),
                        obs::field("flow", p.flow),
                        obs::field("qci", static_cast<int>(p.qci)));
      });
  gateway_.set_pcrf(&pcrf_);
  gateway_.set_downlink_forward(
      [this](net::Packet p) { sla_box_->process(std::move(p)); });
  gateway_.set_uplink_forward(
      [this](net::Packet p) { backhaul_up_.enqueue(std::move(p)); });
  bs_.set_background_load(config_.background_downlink,
                          config_.background_uplink);
  bs_.start();
  if (bs2_) {
    bs2_->set_background_load(config_.background_downlink,
                              config_.background_uplink);
    bs2_->start();
    handover_ = std::make_unique<epc::HandoverController>(
        sched_,
        epc::HandoverController::Config{config_.handover_period,
                                        config_.handover_interruption},
        std::vector<epc::BaseStation*>{&bs_, bs2_.get()});
    handover_->set_observability(&obs_);
    handover_->start();
  }
}

void Testbed::note_truth(charging::Direction direction, bool sent, Bytes size,
                         TimePoint now) {
  auto& table =
      direction == charging::Direction::kUplink ? truth_ul_ : truth_dl_;
  TruthCell& cell = table[config_.plan.cycle_at(now).index];
  if (sent) {
    cell.sent += size;
  } else {
    cell.received += size;
  }
}

void Testbed::app_send_uplink(net::Packet packet) {
  const TimePoint now = sched_.now();
  device_.note_app_sent(packet, now);
  note_truth(charging::Direction::kUplink, /*sent=*/true, packet.size, now);
  if (handover_) {
    handover_->route_uplink(std::move(packet));
  } else {
    bs_.send_uplink(std::move(packet));
  }
}

void Testbed::app_send_downlink(net::Packet packet) {
  const TimePoint now = sched_.now();
  server_.note_sent(packet, now);
  note_truth(charging::Direction::kDownlink, /*sent=*/true, packet.size, now);
  backhaul_down_.enqueue(std::move(packet));
}

void Testbed::control_send_uplink(net::Packet packet) {
  // Bypasses app/ground-truth accounting on purpose: settlement signaling
  // is not application traffic. It still rides the real modem queue and
  // radio, so its delivery is subject to every §3.1 loss cause.
  if (handover_) {
    handover_->route_uplink(std::move(packet));
  } else {
    bs_.send_uplink(std::move(packet));
  }
}

void Testbed::control_send_downlink(net::Packet packet) {
  // Injected behind the gateway's charge point (the operator originates it
  // in its own core) and past the SLA middlebox, straight onto the eNB
  // downlink. Every injected byte lands in net.dl.{delivered,drop.*} but
  // is never charged; this counter balances the downlink gap identity.
  obs_.metrics.counter("tlc.settle.dl_sent_bytes").inc(packet.size.count());
  if (handover_) {
    handover_->route_downlink(std::move(packet));
  } else {
    bs_.send_downlink(std::move(packet));
  }
}

void Testbed::schedule_cycle_end_checks(TimePoint until) {
  const Duration len = config_.plan.cycle_length;
  for (std::int64_t k = 1;; ++k) {
    const TimePoint local_boundary = kTimeZero + len * k;
    const TimePoint true_boundary =
        config_.operator_clock.true_time(local_boundary);
    if (true_boundary > until) break;
    if (true_boundary < sched_.now()) continue;
    const Duration jitter = from_seconds(
        rng_.uniform(0.0, to_seconds(config_.counter_check_jitter_max)));
    sched_.schedule_at(true_boundary + jitter, [this] {
      serving_cell().trigger_counter_check();
    });
  }
}

void Testbed::run_until(TimePoint until) {
  schedule_cycle_end_checks(until);

  // Periodic sampler attributing disconnected time to true-time cycles.
  std::function<void()> sample = [this, &sample, until] {
    const TimePoint now = sched_.now();
    const Duration total = bs_.radio().disconnected_time();
    disconnected_[config_.plan.cycle_at(now).index] +=
        total - last_disc_total_;
    last_disc_total_ = total;
    if (now + kDisconnectSample <= until) {
      sched_.schedule_after(kDisconnectSample, sample);
    }
  };
  sched_.schedule_after(kDisconnectSample, sample);

  sched_.run_until(until);
}

charging::GroundTruth Testbed::truth(charging::Direction direction,
                                     std::uint64_t cycle) const {
  const auto& table =
      direction == charging::Direction::kUplink ? truth_ul_ : truth_dl_;
  const auto it = table.find(cycle);
  charging::GroundTruth truth;
  if (it != table.end()) {
    truth.sent = it->second.sent;
    // Guard the invariant x̂_o ≤ x̂_e against boundary straddling (a packet
    // sent at the very end of a cycle can be delivered in the next one).
    truth.received = std::min(it->second.received, it->second.sent);
  }
  return truth;
}

core::LocalView Testbed::edge_view(charging::Direction direction,
                                   std::uint64_t cycle) const {
  return monitor::edge_view(device_, server_, direction, cycle);
}

core::LocalView Testbed::operator_view(
    charging::Direction direction, std::uint64_t cycle,
    monitor::OperatorDlSource dl_source) const {
  return monitor::operator_view(gateway_, rrc_, bs_, device_, direction,
                                cycle, dl_source);
}

double Testbed::disconnect_ratio(std::uint64_t cycle) const {
  const auto it = disconnected_.find(cycle);
  if (it == disconnected_.end()) return 0.0;
  return to_seconds(it->second) / to_seconds(config_.plan.cycle_length);
}

}  // namespace tlc::exp
