// The five project-invariant rule families enforced by tlc_lint.
//
//   determinism    — no wall-clock, ambient randomness, unordered-container
//                    iteration, or pointer-value formatting under src/.
//   hot-path-alloc — no operator new / std::function / throw inside
//                    functions annotated TLC_HOT (src/common/hot.hpp).
//   span-pairing   — a locally-declared span (auto/SpanContext var holding
//                    the result of Tracer::root*/child* or TLC_SPAN_ROOT/
//                    TLC_SPAN_CHILD) must be ended in the same function, and
//                    no `return` may occur between the begin and the first
//                    end. Member-stored spans (cross-callback lifetimes) are
//                    exempt by construction: only declarations are tracked.
//   wire-bounds    — src/wire/ outside the checked Reader/Writer in codec.*
//                    may not use memcpy/memmove/reinterpret_cast or raw
//                    pointer arithmetic on .data().
//   layering       — directory-level include DAG: each src/<dir> may only
//                    include the directories listed in its adjacency row
//                    (sim/net never see tlc/exp, exp never sees fault, ...).
//
// Escapes: `// tlc-lint: allow(<rule>): <reason>` on the offending line, or
// alone on the line above it. The reason is mandatory; a malformed escape is
// itself reported (rule `allow-syntax`, never allowlistable).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace tlc_lint {

struct Finding {
  std::string file;  // root-relative, '/'-separated
  int line = 0;
  std::string rule;
  std::string message;
  bool allowed = false;
  std::string reason;  // the allow escape's reason when allowed
};

/// Stable rule-family identifiers (what allow() escapes and --disable name).
const std::vector<std::string>& rule_ids();

/// Runs every enabled rule family over one lexed file. `rel_path` must be
/// the root-relative path ('/'-separated) — the wire-bounds and layering
/// families key off it. Findings come back unsorted and without allow
/// resolution; the driver applies escapes and ordering.
std::vector<Finding> run_rules(const std::string& rel_path,
                               const LexedFile& lex,
                               const std::set<std::string>& disabled);

}  // namespace tlc_lint
