#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/json.hpp"

namespace tlc::obs {
namespace {

std::string format_double(double v) { return format_json_double(v); }

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument{"Histogram: bounds must be sorted ascending"};
  }
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  sum_ += v;
  ++count_;
}

LogHistogram::LogHistogram() : counts_(kBucketCount, 0) {}

std::size_t LogHistogram::bucket_index(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const auto msb = static_cast<std::uint32_t>(63 - std::countl_zero(v));
  const std::uint32_t shift = msb - kSubBucketBits;
  // (v >> shift) lands in [kSubBuckets, 2*kSubBuckets): the top
  // kSubBucketBits mantissa bits after the leading one.
  return static_cast<std::size_t>((shift + 1) * kSubBuckets +
                                  ((v >> shift) - kSubBuckets));
}

std::uint64_t LogHistogram::bucket_upper_bound(std::size_t index) {
  if (index < kSubBuckets) return index;  // exact region
  const auto shift =
      static_cast<std::uint32_t>(index / kSubBuckets - 1);
  const std::uint64_t base = (index % kSubBuckets) + kSubBuckets;
  if (shift >= 64 - kSubBucketBits - 1 && base == 2 * kSubBuckets - 1) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return ((base + 1) << shift) - 1;
}

void LogHistogram::observe(std::uint64_t v) {
  ++counts_[bucket_index(v)];
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  sum_ += v;
  ++count_;
}

void LogHistogram::merge_from(const LogHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  count_ += other.count_;
}

std::uint64_t LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      return std::clamp(bucket_upper_bound(i), min_, max_);
    }
  }
  return max_;
}

std::uint64_t MetricsSnapshot::counter_or_zero(std::string_view name) const {
  const auto it = counters.find(std::string{name});
  return it == counters.end() ? 0 : it->second;
}

void MetricsSnapshot::merge_counters_from(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
}

LogHistogramSnapshot MetricsSnapshot::log_histogram_or_zero(
    std::string_view name) const {
  const auto it = log_histograms.find(std::string{name});
  return it == log_histograms.end() ? LogHistogramSnapshot{} : it->second;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(&out, name);
    out.push_back(':');
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(&out, name);
    out += ":{\"value\":" + format_double(g.value) +
           ",\"min\":" + format_double(g.min) +
           ",\"max\":" + format_double(g.max) + "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(&out, name);
    out += ":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + format_double(h.sum) +
           ",\"min\":" + format_double(h.min) +
           ",\"max\":" + format_double(h.max) + ",\"buckets\":[";
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += "{\"le\":";
      if (i < h.upper_bounds.size()) {
        out += format_double(h.upper_bounds[i]);
      } else {
        out += "\"inf\"";
      }
      out += ",\"count\":" + std::to_string(h.bucket_counts[i]) + "}";
    }
    out += "]}";
  }
  out += "},\"log_histograms\":{";
  first = true;
  for (const auto& [name, h] : log_histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(&out, name);
    out += ":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"min\":" + std::to_string(h.min) +
           ",\"max\":" + std::to_string(h.max) +
           ",\"p50\":" + std::to_string(h.p50) +
           ",\"p90\":" + std::to_string(h.p90) +
           ",\"p99\":" + std::to_string(h.p99) + "}";
  }
  out += "}}";
  return out;
}

void MetricsSnapshot::print(std::FILE* out) const {
  std::fprintf(out, "counters:\n");
  for (const auto& [name, value] : counters) {
    std::fprintf(out, "  %-48s %llu\n", name.c_str(),
                 static_cast<unsigned long long>(value));
  }
  std::fprintf(out, "gauges:\n");
  for (const auto& [name, g] : gauges) {
    std::fprintf(out, "  %-48s %.3f (min %.3f, max %.3f)\n", name.c_str(),
                 g.value, g.min, g.max);
  }
  std::fprintf(out, "histograms:\n");
  for (const auto& [name, h] : histograms) {
    std::fprintf(out, "  %-48s n=%llu sum=%.3f min=%.3f max=%.3f\n",
                 name.c_str(), static_cast<unsigned long long>(h.count),
                 h.sum, h.min, h.max);
  }
  std::fprintf(out, "percentiles:\n");
  for (const auto& [name, h] : log_histograms) {
    std::fprintf(
        out, "  %-48s n=%llu p50=%llu p90=%llu p99=%llu max=%llu\n",
        name.c_str(), static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.p50),
        static_cast<unsigned long long>(h.p90),
        static_cast<unsigned long long>(h.p99),
        static_cast<unsigned long long>(h.max));
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string{name}, Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string{name}, Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(std::string{name}, Histogram{std::move(upper_bounds)})
      .first->second;
}

LogHistogram& MetricsRegistry::log_histogram(std::string_view name) {
  const auto it = log_histograms_.find(name);
  if (it != log_histograms_.end()) return it->second;
  return log_histograms_.emplace(std::string{name}, LogHistogram{})
      .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = GaugeSnapshot{g.value(), g.max(), g.min()};
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] =
        HistogramSnapshot{h.upper_bounds(), h.bucket_counts(), h.count(),
                          h.sum(), h.min(), h.max()};
  }
  for (const auto& [name, h] : log_histograms_) {
    snap.log_histograms[name] = LogHistogramSnapshot{
        h.count(), h.sum(),          h.min(),         h.max(),
        h.quantile(0.50), h.quantile(0.90), h.quantile(0.99)};
  }
  return snap;
}

}  // namespace tlc::obs
