#include "crypto/signer.hpp"

#include <openssl/evp.h>
#include <openssl/rsa.h>

#include <array>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/hot.hpp"

namespace tlc::crypto {
namespace {

struct PkeyCtxDeleter {
  void operator()(EVP_PKEY_CTX* ctx) const { EVP_PKEY_CTX_free(ctx); }
};
using PkeyCtxPtr = std::unique_ptr<EVP_PKEY_CTX, PkeyCtxDeleter>;

/// One initialised EVP_PKEY context per (thread, key, operation). RSA
/// PKCS#1 contexts are reusable: EVP_PKEY_sign/EVP_PKEY_verify may be
/// called any number of times after one *_init with fixed parameters, so
/// the padding/digest setup — and the provider fetch behind it — is paid
/// once per session instead of once per message. Entries hold shared
/// ownership of the EVP_PKEY so a cached context never dangles.
struct CachedCtx {
  std::shared_ptr<void> key;  // EVP_PKEY keep-alive; .get() is the cache key
  PkeyCtxPtr ctx;
};

constexpr std::size_t kCtxCacheSlots = 8;

struct CtxCache {
  std::array<CachedCtx, kCtxCacheSlots> slots;
  std::size_t next_evict = 0;
};

CtxCache& sign_cache() {
  thread_local CtxCache cache;
  return cache;
}

CtxCache& verify_cache() {
  thread_local CtxCache cache;
  return cache;
}

/// Finds (or creates, initialises, and caches) the context for `key`.
/// `init` receives a fresh EVP_PKEY_CTX and must complete the operation
/// setup; it is only invoked on a cache miss.
template <typename InitFn>
EVP_PKEY_CTX* cached_ctx(CtxCache& cache, const std::shared_ptr<void>& key,
                         InitFn&& init) {
  for (CachedCtx& slot : cache.slots) {
    if (slot.key.get() == key.get() && slot.key != nullptr) {
      return slot.ctx.get();
    }
  }
  PkeyCtxPtr fresh{EVP_PKEY_CTX_new(static_cast<EVP_PKEY*>(key.get()),
                                    nullptr)};
  if (!fresh) throw std::runtime_error{"EVP_PKEY_CTX_new failed"};
  init(fresh.get());
  CachedCtx& victim = cache.slots[cache.next_evict];
  cache.next_evict = (cache.next_evict + 1) % kCtxCacheSlots;
  victim.key = key;
  victim.ctx = std::move(fresh);
  return victim.ctx.get();
}

EVP_PKEY_CTX* verify_ctx_for(const PublicKey& key) {
  return cached_ctx(verify_cache(), key.shared_handle(), [](EVP_PKEY_CTX* c) {
    if (EVP_PKEY_verify_init(c) != 1) {
      throw std::runtime_error{"EVP_PKEY_verify_init failed"};
    }
    if (EVP_PKEY_CTX_set_rsa_padding(c, RSA_PKCS1_PADDING) != 1 ||
        EVP_PKEY_CTX_set_signature_md(c, EVP_sha256()) != 1) {
      throw std::runtime_error{"verify context setup failed"};
    }
  });
}

EVP_PKEY_CTX* sign_ctx_for(const KeyPair& key) {
  return cached_ctx(sign_cache(), key.shared_handle(), [](EVP_PKEY_CTX* c) {
    if (EVP_PKEY_sign_init(c) != 1) {
      throw std::runtime_error{"EVP_PKEY_sign_init failed"};
    }
    if (EVP_PKEY_CTX_set_rsa_padding(c, RSA_PKCS1_PADDING) != 1 ||
        EVP_PKEY_CTX_set_signature_md(c, EVP_sha256()) != 1) {
      throw std::runtime_error{"sign context setup failed"};
    }
  });
}

TLC_HOT bool verify_digest_with(EVP_PKEY_CTX* ctx, const Digest& digest,
                        std::span<const std::uint8_t> signature) {
  return EVP_PKEY_verify(ctx, signature.data(), signature.size(),
                         digest.data(), digest.size()) == 1;
}

}  // namespace

ByteVec sign(const KeyPair& key, std::span<const std::uint8_t> message) {
  if (!key.valid()) throw std::logic_error{"sign: empty key pair"};
  EVP_PKEY_CTX* ctx = sign_ctx_for(key);
  const Digest digest = sha256(message);
  ByteVec sig(key.signature_size());
  std::size_t sig_len = sig.size();
  if (EVP_PKEY_sign(ctx, sig.data(), &sig_len, digest.data(),
                    digest.size()) != 1) {
    throw std::runtime_error{"EVP_PKEY_sign failed"};
  }
  sig.resize(sig_len);
  return sig;
}

TLC_HOT bool verify(const PublicKey& key, std::span<const std::uint8_t> message,
            std::span<const std::uint8_t> signature) {
  // tlc-lint: allow(hot-path-alloc): empty-key precondition, cold
  if (!key.valid()) throw std::logic_error{"verify: empty public key"};
  return verify_digest_with(verify_ctx_for(key), sha256(message), signature);
}

TLC_HOT bool verify_digest(const PublicKey& key, const Digest& digest,
                   std::span<const std::uint8_t> signature) {
  // tlc-lint: allow(hot-path-alloc): empty-key precondition, cold
  if (!key.valid()) throw std::logic_error{"verify_digest: empty public key"};
  return verify_digest_with(verify_ctx_for(key), digest, signature);
}

TLC_HOT std::size_t verify_batch(const PublicKey& key,
                         std::span<const VerifyItem> items,
                         std::vector<std::uint8_t>* results) {
  // tlc-lint: allow(hot-path-alloc): empty-key precondition, cold
  if (!key.valid()) throw std::logic_error{"verify_batch: empty public key"};
  EVP_PKEY_CTX* ctx = verify_ctx_for(key);
  if (results != nullptr) {
    results->clear();
    results->reserve(items.size());
  }
  std::size_t ok = 0;
  for (const VerifyItem& item : items) {
    const bool valid =
        verify_digest_with(ctx, sha256(item.message), item.signature);
    ok += valid ? 1 : 0;
    if (results != nullptr) results->push_back(valid ? 1 : 0);
  }
  return ok;
}

void reset_signer_caches() {
  sign_cache() = CtxCache{};
  verify_cache() = CtxCache{};
}

}  // namespace tlc::crypto
