#include "sim/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace tlc::sim {

EventId Scheduler::schedule_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) {
    throw std::invalid_argument{"Scheduler::schedule_at: time in the past"};
  }
  const EventId id = next_id_++;
  queue_.push_back(Event{when, next_seq_++, id, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
  ++scheduled_;
  if (m_scheduled_ != nullptr) m_scheduled_->inc();
  if (queue_.size() > max_depth_) max_depth_ = queue_.size();
  note_depth();
  return id;
}

EventId Scheduler::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < Duration::zero()) {
    throw std::invalid_argument{"Scheduler::schedule_after: negative delay"};
  }
  return schedule_at(now_ + delay, std::move(fn));
}

void Scheduler::cancel(EventId id) {
  const auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
  if (it != cancelled_.end() && *it == id) return;  // already recorded
  cancelled_.insert(it, id);
  ++cancelled_count_;
  if (m_cancelled_ != nullptr) m_cancelled_->inc();
  // Ids of events that already fired (or never existed) would otherwise sit
  // in the list forever; once the list outgrows the pending-event count it
  // must contain such stale ids — drop them.
  if (cancelled_.size() > queue_.size()) compact_cancelled();
}

void Scheduler::compact_cancelled() {
  std::vector<EventId> pending;
  pending.reserve(queue_.size());
  for (const Event& ev : queue_) pending.push_back(ev.id);
  std::sort(pending.begin(), pending.end());
  std::vector<EventId> kept;
  std::set_intersection(cancelled_.begin(), cancelled_.end(),
                        pending.begin(), pending.end(),
                        std::back_inserter(kept));
  cancelled_ = std::move(kept);
}

bool Scheduler::is_cancelled(EventId id) {
  const auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
  if (it == cancelled_.end() || *it != id) return false;
  cancelled_.erase(it);
  return true;
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    // Swap-pop: move only the callback out of the heap slot, then shrink.
    // The callback must be owned by a local before it runs — dispatching
    // straight out of `queue_` would dangle if the callback schedules new
    // events and the vector reallocates — and consuming a cancelled entry
    // also erases its id from `cancelled_`, so pending_events() (queue
    // minus cancelled backlog) is preserved across both branches.
    Event& slot = queue_.back();
    const EventId id = slot.id;
    const TimePoint when = slot.when;
    std::function<void()> fn = std::move(slot.fn);
    queue_.pop_back();
    if (is_cancelled(id)) continue;
    now_ = when;
    ++dispatched_;
    if (m_dispatched_ != nullptr) m_dispatched_->inc();
    note_depth();
    fn();
    return true;
  }
  note_depth();
  return false;
}

std::uint64_t Scheduler::run_until(TimePoint deadline) {
  std::uint64_t dispatched = 0;
  while (!queue_.empty()) {
    if (queue_.front().when > deadline) break;
    if (step()) ++dispatched;
  }
  if (now_ < deadline) now_ = deadline;
  return dispatched;
}

std::uint64_t Scheduler::run() {
  std::uint64_t dispatched = 0;
  while (step()) ++dispatched;
  return dispatched;
}

std::size_t Scheduler::pending_events() const {
  return queue_.size() - std::min<std::size_t>(queue_.size(),
                                               cancelled_.size());
}

void Scheduler::set_observability(obs::Obs* obs) {
  if (obs == nullptr) {
    m_scheduled_ = nullptr;
    m_dispatched_ = nullptr;
    m_cancelled_ = nullptr;
    m_depth_ = nullptr;
    return;
  }
  m_scheduled_ = &obs->metrics.counter("sim.sched.scheduled");
  m_dispatched_ = &obs->metrics.counter("sim.sched.dispatched");
  m_cancelled_ = &obs->metrics.counter("sim.sched.cancelled");
  m_depth_ = &obs->metrics.gauge("sim.sched.queue_depth");
}

void Scheduler::note_depth() {
  if (m_depth_ != nullptr) {
    m_depth_->set(static_cast<double>(queue_.size()));
  }
}

}  // namespace tlc::sim
