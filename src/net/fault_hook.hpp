// Link-layer fault-injection hook (DESIGN.md §8).
//
// A CellLink consults its (optional) hook once per packet that *survived*
// the radio — i.e. at the point where the link would otherwise deliver —
// so injected faults compose with, rather than mask, the organic loss
// model. The hook's decision can drop the packet (accounted under
// DropCause::kFaultInjected so the charging-gap-by-cause identity stays
// exact), deliver extra duplicate copies (accounted under
// <prefix>.fault.duplicated_*), or delay delivery to force bounded
// reordering behind later packets.
//
// The interface lives in net/ so the fault library can depend on net
// without net depending on it; production code never includes this header
// except through link.hpp's pointer member.
#pragma once

#include "common/units.hpp"
#include "net/packet.hpp"

namespace tlc::net {

/// What to do with one about-to-be-delivered packet.
struct FaultDecision {
  /// Drop instead of delivering (DropCause::kFaultInjected).
  bool drop = false;
  /// Extra copies to deliver alongside the original (duplication fault).
  std::uint32_t duplicates = 0;
  /// Additional delivery delay on top of the propagation delay; later
  /// packets with no delay overtake this one (bounded reorder fault).
  Duration delay = Duration::zero();
};

class LinkFaultHook {
 public:
  virtual ~LinkFaultHook() = default;

  /// Called for every packet that survived the air interface, just before
  /// delivery is scheduled. Must be deterministic for a fixed fault plan.
  [[nodiscard]] virtual FaultDecision on_deliver(const Packet& packet,
                                                 TimePoint now) = 0;
};

}  // namespace tlc::net
