// Figure 16b — "Negotiation after charging cycle" (rounds to converge).
//
// Mean negotiation rounds per scheme and application over the evaluation
// grid. Paper: TLC-optimal converges in 1 round everywhere; TLC-random
// needs 3.5 (WebCam UDP), 2.7 (WebCam RTSP), 4.6 (gaming), 2.7 (VR).
#include <cstdio>

#include "dataset.hpp"
#include "exp/metrics.hpp"

using namespace tlc;
using namespace tlc::exp;

int main(int argc, char** argv) {
  const SweepOptions sweep = sweep_options_from_cli(argc, argv);
  std::printf("## Figure 16b: negotiation rounds by scheme\n\n");

  constexpr AppKind kApps[] = {AppKind::kWebcamUdp, AppKind::kWebcamRtsp,
                               AppKind::kGaming, AppKind::kVridge};
  constexpr double kPaperRandom[] = {3.5, 2.7, 4.6, 2.7};

  Table table{{"scenario", "TLC-optimal (mean)", "TLC-random (mean)",
               "TLC-random (max)", "paper random"}};
  for (std::size_t i = 0; i < std::size(kApps); ++i) {
    GridOptions opt;
    opt.seeds = {1, 2, 3};
    const auto results = run_grid(kApps[i], opt, sweep);
    const SampleSet optimal = collect_rounds(results, Scheme::kTlcOptimal);
    const SampleSet random = collect_rounds(results, Scheme::kTlcRandom);
    table.add_row({std::string(to_string(kApps[i])),
                   fmt(optimal.mean(), 2), fmt(random.mean(), 2),
                   fmt(random.max(), 0), fmt(kPaperRandom[i], 1)});
  }
  table.print();
  std::printf("\nTLC-optimal must read 1.00 everywhere (Theorem 4); "
              "TLC-random a small number >1.\n");
  return 0;
}
