// Link-layer mobility (§3.1 gap cause 2): handover between base stations.
//
// A moving device periodically switches serving cells. During the handover
// interruption the source cell's buffered downlink data is discarded and
// in-flight traffic is lost (X2-style handover without data forwarding),
// while the gateway keeps charging — the mobility-induced charging gap the
// measurement studies [10] report.
//
// The controller owns the serving-cell decision; the gateway and the
// device route their traffic through it instead of a fixed BaseStation.
#pragma once

#include <functional>
#include <vector>

#include "epc/basestation.hpp"

namespace tlc::epc {

class HandoverController {
 public:
  struct Config {
    /// Time between handovers (device speed proxy).
    Duration period = std::chrono::seconds{30};
    /// Data interruption while the device switches cells.
    Duration interruption = std::chrono::milliseconds{80};
  };

  /// All cells serve the same device; cell 0 starts as the serving cell.
  /// Every non-serving cell is suspended. `start()` begins the periodic
  /// handover schedule.
  HandoverController(sim::Scheduler& sched, Config config,
                     std::vector<BaseStation*> cells);

  void start();

  /// Routes traffic via the current serving cell. During the interruption
  /// window both cells are suspended, so routed packets drop with
  /// DropCause::kHandover — charged (downlink) but never delivered.
  void route_downlink(net::Packet packet);
  void route_uplink(net::Packet packet);

  [[nodiscard]] BaseStation& serving() { return *cells_[serving_index_]; }
  [[nodiscard]] std::size_t serving_index() const { return serving_index_; }
  [[nodiscard]] std::uint64_t handover_count() const { return handovers_; }

  /// Executes one handover to the next cell immediately (also used by the
  /// periodic schedule).
  void execute_handover();

  /// Counter epc.handover.count; trace component "epc.handover", one
  /// "handover" event per execution (from/to cell indices) at info.
  void set_observability(obs::Obs* obs);

 private:
  sim::Scheduler& sched_;
  Config config_;
  std::vector<BaseStation*> cells_;
  std::size_t serving_index_ = 0;
  std::uint64_t handovers_ = 0;
  bool started_ = false;

  obs::Obs* obs_ = nullptr;
  obs::Counter* m_handovers_ = nullptr;
};

}  // namespace tlc::epc
