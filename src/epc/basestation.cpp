#include "epc/basestation.hpp"

namespace tlc::epc {

BaseStation::BaseStation(sim::Scheduler& sched, BaseStationConfig config,
                         Rng rng, EdgeDevice& device, charging::DataPlan plan,
                         sim::NodeClock operator_clock)
    : sched_(sched),
      config_(config),
      device_(device),
      plan_(plan),
      operator_clock_(operator_clock),
      radio_(config.radio, rng),
      dl_link_(
          sched, config.downlink, &radio_,
          [this](const net::Packet& p, TimePoint at) {
            note_activity();
            device_.on_downlink_delivered(p, at);
            if (downlink_sink_) downlink_sink_(p, at);
          },
          [this](const net::Packet& p, net::DropCause cause, TimePoint at) {
            if (dl_drop_observer_) dl_drop_observer_(p, cause, at);
          }),
      ul_link_(
          sched, config.uplink, &radio_,
          [this](const net::Packet& p, TimePoint at) {
            note_activity();
            if (uplink_sink_) uplink_sink_(p, at);
          },
          [this](const net::Packet& p, net::DropCause cause, TimePoint at) {
            if ((cause == net::DropCause::kRadioLoss ||
                 cause == net::DropCause::kCongestionLoss) &&
                p.flow != net::kControlFlow) {
              // Granted transmission failed on the air: the scheduler sees
              // this, so the operator can count it toward x̂_e.
              const std::uint64_t cycle =
                  plan_.cycle_at(operator_clock_.local_time(at)).index;
              ul_radio_loss_by_cycle_[cycle] += p.size;
            }
            if (ul_drop_observer_) ul_drop_observer_(p, cause, at);
          }) {}

void BaseStation::set_observability(obs::Obs* obs,
                                    const std::string& cell_name) {
  obs_ = obs;
  component_ = "epc." + cell_name;
  radio_.set_observability(obs, "radio." + cell_name);
  // Both cells share the link prefixes so per-cause drop counters aggregate
  // across handovers: the charging-gap identity is a property of the whole
  // downlink path, not of one cell.
  dl_link_.set_observability(obs, "net.dl");
  ul_link_.set_observability(obs, "net.ul");
  if (obs_ == nullptr) {
    m_detaches_ = nullptr;
    m_attaches_ = nullptr;
    m_counter_checks_ = nullptr;
    m_counter_check_timeouts_ = nullptr;
    return;
  }
  m_detaches_ = &obs_->metrics.counter(component_ + ".detaches");
  m_attaches_ = &obs_->metrics.counter(component_ + ".attaches");
  m_counter_checks_ = &obs_->metrics.counter(component_ + ".counter_checks");
  m_counter_check_timeouts_ =
      &obs_->metrics.counter(component_ + ".fault.counter_check_timeouts");
}

void BaseStation::start() {
  if (started_) return;
  started_ = true;
  last_activity_ = sched_.now();
  sched_.schedule_after(config_.poll_interval, [this] { poll_radio(); });
}

void BaseStation::send_downlink(net::Packet packet) {
  note_activity();
  if (packet.trace_id != 0) {
    const obs::SpanContext ctx{packet.trace_id, packet.span_id};
    TLC_TRACE_EVENT(obs_, component_, "process", obs::TraceLevel::kInfo,
                    obs::trace_field(ctx), obs::span_field(ctx),
                    obs::field("direction", "downlink"),
                    obs::field("bytes", packet.size));
  }
  dl_link_.enqueue(std::move(packet));
}

void BaseStation::send_uplink(net::Packet packet) {
  note_activity();
  // Control-plane (settlement) packets are excluded from the modem's
  // tamper-resilient counters: they are zero-rated, so counting them would
  // skew the COUNTER CHECK record against the charged volume.
  if (packet.flow != net::kControlFlow) {
    device_.note_modem_transmitted(packet.size);
  }
  if (packet.trace_id != 0) {
    const obs::SpanContext ctx{packet.trace_id, packet.span_id};
    TLC_TRACE_EVENT(obs_, component_, "process", obs::TraceLevel::kInfo,
                    obs::trace_field(ctx), obs::span_field(ctx),
                    obs::field("direction", "uplink"),
                    obs::field("bytes", packet.size));
  }
  ul_link_.enqueue(std::move(packet));
}

void BaseStation::set_background_load(BitRate downlink, BitRate uplink) {
  dl_link_.set_background_load(downlink);
  ul_link_.set_background_load(uplink);
}

Bytes BaseStation::observed_uplink_radio_loss(std::uint64_t cycle) const {
  const auto it = ul_radio_loss_by_cycle_.find(cycle);
  return it == ul_radio_loss_by_cycle_.end() ? Bytes{0} : it->second;
}

void BaseStation::fail_next_counter_checks(std::uint32_t count,
                                           Duration retry_after) {
  counter_check_faults_armed_ += count;
  counter_check_retry_ = retry_after;
}

bool BaseStation::trigger_counter_check() {
  if (!attached_) return false;
  if (counter_check_faults_armed_ > 0) {
    --counter_check_faults_armed_;
    ++counter_check_timeouts_;
    if (m_counter_check_timeouts_ != nullptr) m_counter_check_timeouts_->inc();
    TLC_TRACE_EVENT(obs_, component_, "counter_check_timeout",
                    obs::TraceLevel::kInfo,
                    obs::field("retry_s", to_seconds(counter_check_retry_)));
    // The OFCS notices the missing response and re-polls after a bounded
    // back-off; the retry itself may hit a detached device, in which case
    // the report is simply late by one more idle-release.
    sched_.schedule_after(counter_check_retry_, [this] {
      if (attached_) perform_counter_check();
    });
    return false;
  }
  perform_counter_check();
  return true;
}

void BaseStation::perform_counter_check() {
  ++counter_checks_;
  if (m_counter_checks_ != nullptr) m_counter_checks_->inc();
  CounterCheckReport report;
  report.cumulative_dl_bytes = device_.modem_rx_bytes();
  report.cumulative_ul_bytes = device_.modem_tx_bytes();
  report.at = sched_.now();
  TLC_TRACE_EVENT(obs_, component_, "counter_check", obs::TraceLevel::kDebug,
                  obs::field("dl_bytes", report.cumulative_dl_bytes),
                  obs::field("ul_bytes", report.cumulative_ul_bytes));
  if (counter_check_sink_) counter_check_sink_(report);
}

void BaseStation::poll_radio() {
  const TimePoint now = sched_.now();
  const bool connected = radio_.state_at(now).connected;

  if (!connected) {
    if (!in_outage_) {
      in_outage_ = true;
      disconnected_since_ = now;
    }
    if (attached_ && now - disconnected_since_ >= config_.rlf_detach_after) {
      detach();
    }
  } else {
    if (in_outage_) {
      in_outage_ = false;
      reconnected_since_ = now;
    }
    if (!attached_ && now - reconnected_since_ >= config_.reattach_settle) {
      attach();
    }
    // RRC inactivity release: counter check, then release the connection.
    if (attached_ && rrc_connected_ &&
        now - last_activity_ >= config_.rrc_idle_timeout) {
      perform_counter_check();
      rrc_connected_ = false;
    }
    if (!rrc_connected_ &&
        (!dl_link_.blocked() && (dl_link_.queue_depth() > 0 ||
                                 now - last_activity_ < config_.poll_interval))) {
      // Any fresh activity re-establishes the RRC connection (setup delay
      // is negligible at this model's granularity).
      rrc_connected_ = true;
    }
  }

  sched_.schedule_after(config_.poll_interval, [this] { poll_radio(); });
}

void BaseStation::detach() {
  ++detaches_;
  if (m_detaches_ != nullptr) m_detaches_->inc();
  TLC_TRACE_EVENT(obs_, component_, "detach", obs::TraceLevel::kInfo,
                  obs::field("outage_s",
                             to_seconds(sched_.now() - disconnected_since_)));
  attached_ = false;
  rrc_connected_ = false;
  dl_link_.flush(net::DropCause::kDetached);
  dl_link_.set_blocked(true, net::DropCause::kDetached);
  ul_link_.flush(net::DropCause::kDetached);
  ul_link_.set_blocked(true, net::DropCause::kDetached);
  if (session_cb_) session_cb_(false, sched_.now());
}

void BaseStation::attach() {
  if (m_attaches_ != nullptr) m_attaches_->inc();
  TLC_TRACE_EVENT(obs_, component_, "attach", obs::TraceLevel::kInfo);
  attached_ = true;
  rrc_connected_ = true;
  if (!suspended_) {
    dl_link_.set_blocked(false);
    ul_link_.set_blocked(false);
  }
  if (session_cb_) session_cb_(true, sched_.now());
}

void BaseStation::suspend(net::DropCause cause) {
  TLC_TRACE_EVENT(obs_, component_, "suspend", obs::TraceLevel::kInfo,
                  obs::field("cause", to_string(cause)));
  suspended_ = true;
  dl_link_.flush(cause);
  dl_link_.set_blocked(true, cause);
  ul_link_.flush(cause);
  ul_link_.set_blocked(true, cause);
}

void BaseStation::resume() {
  TLC_TRACE_EVENT(obs_, component_, "resume", obs::TraceLevel::kInfo);
  suspended_ = false;
  if (attached_) {
    dl_link_.set_blocked(false);
    ul_link_.set_blocked(false);
  }
}

}  // namespace tlc::epc
