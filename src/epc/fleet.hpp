// Structure-of-arrays device/session/counter state for operator-scale
// fleets.
//
// The Fig. 11 Testbed models ONE device with full packet-level fidelity;
// policing the charging gap for an operator-scale population needs a
// different point on the fidelity/scale curve. DeviceFleet holds the state
// of millions of UEs as index-addressed columns keyed by a dense device id
// — no per-device heap objects, no pointers — so the per-cycle
// CDR→CDA→PoC bookkeeping is a contiguous walk:
//
//   * session columns  — serving cell, RRC connectivity, reconnect count;
//   * counter columns  — per-cycle gateway CDR (charged) and edge app
//     (delivered) volumes, cumulative modem octets: the same three views
//     §5.4 gives the single-device testbed;
//   * settlement columns — per-device billed totals under legacy and TLC
//     charging, and a per-device PoC hash chain folded at every settle.
//
// All randomness is counter-based (common/rng stream_draw): a device's
// k-th draw depends only on (fleet seed, device id, k), never on global
// event order or the shard partition — the keystone of the shard-count
// independence proven by tests/exp/test_fleet_determinism.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace tlc::epc {

/// Dense fleet device id: an index into the SoA columns.
using FleetDeviceId = std::uint32_t;

/// Traffic/charging model for one downlink-heavy edge app across the
/// fleet (a coarse-grained analogue of the Fig. 11 webcam workload).
struct FleetTrafficParams {
  /// Mean application burst the server pushes per wakeup; actual bursts
  /// are uniform in [0.5, 1.5) × mean.
  std::uint64_t mean_burst_bytes = 12'000;
  /// Mean gap between bursts; actual gaps uniform in [0.5, 1.5) × mean.
  Duration mean_burst_period = std::chrono::milliseconds{250};
  /// Residual radio loss at good RSS (§3.2 measures 6.7–8.3%).
  double base_loss = 0.02;
  /// Additional loss at the most congested cell; each cell sits at a
  /// static congestion level in [0, 1] derived from its id.
  double congestion_loss_max = 0.08;
  /// Probability a burst hits a coverage dip: the gateway charges the full
  /// burst but nothing reaches the device (§3.1 cause 1).
  double dip_probability = 0.01;
  /// Every Nth burst the device is mid-handover and loses this fraction
  /// of the burst after charging (§3.1 cause 2). 0 disables.
  std::uint32_t handover_every = 64;
  double handover_loss = 0.3;
  /// Uplink acknowledgement traffic as a fraction denominator of the
  /// downlink burst (ul = burst / ul_divisor + 40 header bytes).
  std::uint64_t ul_divisor = 40;
};

/// FNV-1a fold of one 64-bit word into a running hash — the primitive for
/// the per-device PoC chains and the fleet digest.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::uint64_t h,
                                              std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}
inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

class DeviceFleet {
 public:
  /// Builds the columns for `devices` UEs grouped `devices_per_cell` to a
  /// cell. Per-device stream seeds derive from `seed` via stream_seed
  /// (full splitmix64 avalanche — never seed + id).
  DeviceFleet(std::size_t devices, std::uint32_t devices_per_cell,
              std::uint64_t seed);

  [[nodiscard]] std::size_t devices() const { return seeds_.size(); }
  [[nodiscard]] std::uint32_t cells() const { return cell_count_; }
  [[nodiscard]] std::uint32_t devices_per_cell() const {
    return devices_per_cell_;
  }
  [[nodiscard]] std::uint32_t cell_of(FleetDeviceId d) const {
    return static_cast<std::uint32_t>(d / devices_per_cell_);
  }
  [[nodiscard]] std::uint64_t device_stream(FleetDeviceId d) const {
    return seeds_[d];
  }
  /// Static congestion level of a cell, in [0, 1].
  [[nodiscard]] static double cell_congestion(std::uint32_t cell);

  /// Byte deltas of one burst, tallied by the caller into per-shard
  /// counters (keeping the fleet itself free of any cross-device state
  /// that could observe event order).
  struct BurstOutcome {
    std::uint64_t charged_dl = 0;    // gateway CDR increment
    std::uint64_t delivered_dl = 0;  // reached the app (edge CDA view)
    std::uint64_t dropped_disconnect = 0;
    std::uint64_t dropped_radio = 0;
    std::uint64_t dropped_handover = 0;
    std::uint64_t charged_ul = 0;
    bool reconnected = false;  // RRC re-established on this burst
    Duration next_gap{};       // schedule the next burst this far ahead
  };

  /// Reserved draw index for a device's initial burst offset. Burst draws
  /// advance 4 per burst from 0, so this counter value is never reached
  /// organically.
  static constexpr std::uint64_t kOffsetDraw = ~std::uint64_t{0};

  /// First-wakeup offset of device `d` from the run start: uniform in
  /// [0.5, 1.5) × mean_burst_period, never zero, drawn at the reserved
  /// kOffsetDraw counter so it is shard-count independent like every other
  /// draw. Both the sharded batch runner (exp/fleet.cpp) and the online
  /// replay (serve/replay.cpp) schedule from this one rule — their burst
  /// streams match burst for burst.
  [[nodiscard]] Duration initial_offset(FleetDeviceId d,
                                        const FleetTrafficParams& params) const;

  /// One downlink burst (plus piggybacked uplink) for device `d`: charges
  /// at the gateway column, applies the loss model, and advances the
  /// device's draw counter. Only columns of `d` (and its cell's
  /// accumulators, owned by the same shard) are touched.
  BurstOutcome burst(FleetDeviceId d, const FleetTrafficParams& params);

  /// Cycle-end settlement over the contiguous device range [begin, end):
  /// the CDR→CDA→PoC walk. For each device the gateway's CDR (charged) and
  /// the edge's CDA (delivered) settle into a legacy bill (CDR verbatim)
  /// and a TLC bill (CDA + loss_weight × disputed gap, Algorithm 1's
  /// split), fold into the device's PoC chain, and reset the per-cycle
  /// columns. Returns exact totals for the range.
  struct SettleTotals {
    std::uint64_t devices = 0;
    std::uint64_t charged_dl = 0;
    std::uint64_t delivered_dl = 0;
    std::uint64_t gap_dl = 0;
    std::uint64_t billed_legacy = 0;
    std::uint64_t billed_tlc = 0;
    std::uint64_t charged_ul = 0;
  };
  SettleTotals settle_range(FleetDeviceId begin, FleetDeviceId end,
                            std::uint64_t cycle, double loss_weight);

  /// Per-cell per-cycle accumulators (the RRC COUNTER CHECK the cell
  /// reports to the OFCS aggregator at cycle end). Reset by
  /// reset_cell_cycle after the report is posted.
  [[nodiscard]] std::uint64_t cell_charged_dl(std::uint32_t cell) const {
    return cell_charged_dl_[cell];
  }
  [[nodiscard]] std::uint64_t cell_delivered_dl(std::uint32_t cell) const {
    return cell_delivered_dl_[cell];
  }
  void reset_cell_cycle(std::uint32_t cell) {
    cell_charged_dl_[cell] = 0;
    cell_delivered_dl_[cell] = 0;
  }

  /// Read-only column access for audits/tests.
  [[nodiscard]] std::uint64_t cycle_charged_dl(FleetDeviceId d) const {
    return cdr_dl_[d];
  }
  [[nodiscard]] std::uint64_t cycle_delivered_dl(FleetDeviceId d) const {
    return app_dl_recv_[d];
  }
  [[nodiscard]] std::uint64_t billed_legacy(FleetDeviceId d) const {
    return billed_legacy_[d];
  }
  [[nodiscard]] std::uint64_t billed_tlc(FleetDeviceId d) const {
    return billed_tlc_[d];
  }
  [[nodiscard]] std::uint64_t modem_rx(FleetDeviceId d) const {
    return modem_rx_[d];
  }
  [[nodiscard]] std::uint64_t modem_tx(FleetDeviceId d) const {
    return modem_tx_[d];
  }
  [[nodiscard]] std::uint64_t poc_chain(FleetDeviceId d) const {
    return poc_[d];
  }
  [[nodiscard]] bool rrc_connected(FleetDeviceId d) const {
    return connected_[d] != 0;
  }
  [[nodiscard]] std::uint32_t reconnects(FleetDeviceId d) const {
    return reconnects_[d];
  }

  /// Order-independent digest of the whole fleet's settled state: a
  /// device-id-ordered FNV fold over every settlement column. Two runs
  /// produce the same digest iff every device settled identically —
  /// regardless of shard count or thread interleaving.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  std::uint32_t devices_per_cell_;
  std::uint32_t cell_count_;

  // --- per-device columns (SoA, indexed by FleetDeviceId) ---
  std::vector<std::uint64_t> seeds_;        // counter-based RNG stream
  std::vector<std::uint64_t> draw_ix_;      // next draw counter
  std::vector<std::uint32_t> burst_ix_;     // bursts to date (handover phase)
  std::vector<std::uint8_t> connected_;     // RRC session state
  std::vector<std::uint32_t> reconnects_;   // session churn
  std::vector<std::uint64_t> cdr_dl_;       // per-cycle gateway CDR
  std::vector<std::uint64_t> app_dl_recv_;  // per-cycle edge delivery (CDA)
  std::vector<std::uint64_t> cdr_ul_;       // per-cycle uplink CDR
  std::vector<std::uint64_t> app_ul_sent_;  // per-cycle uplink app bytes
  std::vector<std::uint64_t> modem_rx_;     // cumulative modem octets
  std::vector<std::uint64_t> modem_tx_;
  std::vector<std::uint64_t> billed_legacy_;  // cumulative bills
  std::vector<std::uint64_t> billed_tlc_;
  std::vector<std::uint64_t> poc_;  // per-device PoC hash chain

  // --- per-cell per-cycle accumulators (cells never span shards) ---
  std::vector<std::uint64_t> cell_charged_dl_;
  std::vector<std::uint64_t> cell_delivered_dl_;
};

}  // namespace tlc::epc
