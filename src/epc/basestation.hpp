// The base station (eNodeB / gNB) plus the RRC behaviours TLC relies on.
//
// Owns the device's radio model and both directions of the air interface:
//   * downlink:  gateway → [DL CellLink + radio] → device
//   * uplink:    device  → [UL CellLink + radio] → gateway
//
// RRC behaviours reproduced from the paper:
//   * RRC COUNTER CHECK (§5.4): before releasing an idle radio connection —
//     and whenever the operator explicitly triggers one — the base station
//     queries the device modem's cumulative octet counters and reports the
//     snapshot to the operator's monitor. Hardware counters cannot be
//     tampered with by the edge, unlike user-space APIs.
//   * Radio-link-failure detach (§3.2): after `rlf_detach_after`
//     (default 5 s, matching the paper's LTE core) of continuous
//     disconnection the device is detached: the downlink buffer is flushed
//     and the gateway stops charging until re-attach.
//   * Uplink loss observation: the scheduler knows which granted uplink
//     transmissions failed on the air, so the operator can estimate the
//     device-sent volume as gateway-received + observed radio losses
//     (losses inside the device modem queue are *not* observable — one
//     source of TLC's residual charging error).
#pragma once

#include <functional>
#include <string>

#include "charging/cycle.hpp"
#include "epc/device.hpp"
#include "net/link.hpp"
#include "obs/obs.hpp"
#include "sim/scheduler.hpp"

namespace tlc::epc {

struct BaseStationConfig {
  net::RadioConfig radio;
  net::CellLink::Config downlink;
  net::CellLink::Config uplink;
  Duration rlf_detach_after = std::chrono::seconds{5};
  Duration reattach_settle = std::chrono::milliseconds{500};
  Duration rrc_idle_timeout = std::chrono::seconds{10};
  Duration poll_interval = std::chrono::milliseconds{100};
};

/// Cumulative modem counters delivered by an RRC COUNTER CHECK RESPONSE.
struct CounterCheckReport {
  std::uint64_t cumulative_dl_bytes = 0;
  std::uint64_t cumulative_ul_bytes = 0;
  TimePoint at = kTimeZero;
};

class BaseStation {
 public:
  using CounterCheckFn = std::function<void(const CounterCheckReport&)>;
  using UplinkSinkFn = std::function<void(const net::Packet&, TimePoint)>;
  using SessionFn = std::function<void(bool attached, TimePoint)>;
  using DropFn = net::CellLink::DropFn;

  BaseStation(sim::Scheduler& sched, BaseStationConfig config, Rng rng,
              EdgeDevice& device, charging::DataPlan plan,
              sim::NodeClock operator_clock);

  /// Gateway-facing: admit a (already charged) downlink packet.
  void send_downlink(net::Packet packet);

  /// Device-facing: the app/modem submits an uplink packet.
  void send_uplink(net::Packet packet);

  /// Uplink packets that survive the air are handed here (→ gateway).
  void set_uplink_sink(UplinkSinkFn fn) { uplink_sink_ = std::move(fn); }
  /// Attach/detach notifications (→ gateway session state).
  void set_session_callback(SessionFn fn) { session_cb_ = std::move(fn); }
  /// Counter-check reports (→ operator's RRC downlink monitor).
  void set_counter_check_sink(CounterCheckFn fn) {
    counter_check_sink_ = std::move(fn);
  }
  /// Observers for every lost packet (ground-truth bookkeeping).
  void set_downlink_drop_observer(DropFn fn) { dl_drop_observer_ = std::move(fn); }
  void set_uplink_drop_observer(DropFn fn) { ul_drop_observer_ = std::move(fn); }
  /// Downlink deliveries (→ device + ground truth).
  void set_downlink_sink(UplinkSinkFn fn) { downlink_sink_ = std::move(fn); }

  /// Operator-triggered RRC COUNTER CHECK (e.g. at charging-cycle end).
  /// Returns false when the device is unreachable (detached).
  bool trigger_counter_check();

  /// Fault injection (DESIGN.md §8): the next `count` operator-triggered
  /// counter checks time out — no report reaches the monitor immediately —
  /// and the OFCS retry fires `retry_after` later (bounded, so midpoint
  /// attribution keeps the delta in the right cycle). Counted in
  /// epc.<cell>.fault.counter_check_timeouts.
  void fail_next_counter_checks(std::uint32_t count, Duration retry_after);
  [[nodiscard]] std::uint64_t counter_check_timeouts() const {
    return counter_check_timeouts_;
  }

  /// Fault injection: hook consulted for every packet that survives the
  /// organic loss model on the respective direction (nullptr disables).
  /// The hook must outlive this cell or be reset to nullptr first.
  void set_downlink_fault_hook(net::LinkFaultHook* hook) {
    dl_link_.set_fault_hook(hook);
  }
  void set_uplink_fault_hook(net::LinkFaultHook* hook) {
    ul_link_.set_fault_hook(hook);
  }

  /// Mobility support: while suspended (device served by another cell, or
  /// mid-handover) traffic at this cell is dropped with `cause`; the
  /// gateway session stays up, unlike a detach — which is exactly why
  /// handover loss creates a charging gap.
  void suspend(net::DropCause cause);
  void resume();
  [[nodiscard]] bool suspended() const { return suspended_; }

  /// Starts the RRC supervision loop; call once after wiring callbacks.
  void start();

  [[nodiscard]] bool attached() const { return attached_; }
  [[nodiscard]] net::RadioModel& radio() { return radio_; }
  [[nodiscard]] const net::CellLink& downlink() const { return dl_link_; }
  [[nodiscard]] const net::CellLink& uplink() const { return ul_link_; }
  /// Background (competing) load on each direction of the cell.
  void set_background_load(BitRate downlink, BitRate uplink);

  /// Radio-loss bytes the eNodeB scheduler observed on granted uplink
  /// transmissions, bucketed by the operator's charging cycle.
  [[nodiscard]] Bytes observed_uplink_radio_loss(std::uint64_t cycle) const;

  [[nodiscard]] std::uint64_t detach_count() const { return detaches_; }
  [[nodiscard]] std::uint64_t counter_check_count() const {
    return counter_checks_;
  }

  /// Wires the whole cell: the radio (component "radio.<cell>"), both air
  /// links (shared prefixes "net.dl"/"net.ul" so parallel cells aggregate
  /// into one set of per-cause drop counters), plus per-cell counters
  /// epc.<cell>.{detaches,attaches,counter_checks}. Trace component
  /// "epc.<cell>": detach/attach/suspend/resume at info, counter_check at
  /// debug.
  void set_observability(obs::Obs* obs, const std::string& cell_name);

 private:
  void poll_radio();
  void detach();
  void attach();
  void note_activity() { last_activity_ = sched_.now(); }
  void perform_counter_check();

  sim::Scheduler& sched_;
  BaseStationConfig config_;
  EdgeDevice& device_;
  charging::DataPlan plan_;
  sim::NodeClock operator_clock_;
  net::RadioModel radio_;
  net::CellLink dl_link_;
  net::CellLink ul_link_;

  UplinkSinkFn uplink_sink_;
  UplinkSinkFn downlink_sink_;
  SessionFn session_cb_;
  CounterCheckFn counter_check_sink_;
  DropFn dl_drop_observer_;
  DropFn ul_drop_observer_;

  bool attached_ = true;
  bool rrc_connected_ = true;
  bool suspended_ = false;
  TimePoint disconnected_since_ = kTimeZero;
  bool in_outage_ = false;
  TimePoint reconnected_since_ = kTimeZero;
  TimePoint last_activity_ = kTimeZero;
  std::uint64_t detaches_ = 0;
  std::uint64_t counter_checks_ = 0;
  std::uint32_t counter_check_faults_armed_ = 0;
  Duration counter_check_retry_ = std::chrono::seconds{5};
  std::uint64_t counter_check_timeouts_ = 0;
  std::map<std::uint64_t, Bytes> ul_radio_loss_by_cycle_;
  bool started_ = false;

  obs::Obs* obs_ = nullptr;
  std::string component_;
  obs::Counter* m_detaches_ = nullptr;
  obs::Counter* m_attaches_ = nullptr;
  obs::Counter* m_counter_checks_ = nullptr;
  obs::Counter* m_counter_check_timeouts_ = nullptr;
};

}  // namespace tlc::epc
