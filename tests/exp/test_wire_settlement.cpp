// Wire-level settlement (exp/wire_exchange.hpp): the CDR→CDA→PoC exchange
// over the real simulated radio path. Checks completion, charge bounds,
// zero-rating (the charging-gap identities stay exact with control bytes
// on the links), trace-ID determinism, and that enabling settlement does
// not perturb the app-traffic cycle outcomes.
#include "exp/wire_exchange.hpp"

#include <gtest/gtest.h>

#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "net/packet.hpp"

namespace tlc::exp {
namespace {

ScenarioConfig small_config(std::uint64_t seed = 7) {
  ScenarioConfig cfg;
  cfg.app = AppKind::kWebcamUdp;
  cfg.cycles = 2;
  cfg.cycle_length = std::chrono::seconds{30};
  cfg.seed = seed;
  cfg.wire_settlement = true;
  return cfg;
}

std::uint64_t drops_for(const obs::MetricsSnapshot& m, const char* prefix) {
  std::uint64_t total = 0;
  for (std::size_t i = 1; i < net::kDropCauseCount; ++i) {
    total += m.counter_or_zero(std::string{prefix} + ".drop." +
                               net::to_string(static_cast<net::DropCause>(i)) +
                               "_bytes");
  }
  return total;
}

TEST(WireSettlement, SettlesEveryMeasuredCycle) {
  const ScenarioResult result = run_scenario(small_config());
  ASSERT_EQ(result.settlements.size(), 2u);
  for (const SettlementOutcome& s : result.settlements) {
    EXPECT_TRUE(s.completed) << "cycle " << s.cycle;
    EXPECT_GE(s.messages, 3);
    EXPECT_GE(s.rounds, 1);
    EXPECT_GT(s.elapsed, Duration::zero());
    EXPECT_NE(s.trace_id, 0u);
  }
  // The negotiated charge agrees with the value-level negotiation run on
  // the same views (both use the rational strategies, so the outcome is a
  // pure function of the views).
  for (std::size_t i = 0; i < result.settlements.size(); ++i) {
    const CycleOutcome& c = result.cycles[i];
    EXPECT_EQ(result.settlements[i].cycle, c.cycle);
    EXPECT_EQ(result.settlements[i].charged, c.optimal.charged)
        << "cycle " << c.cycle;
  }
}

TEST(WireSettlement, TraceIdIsDeterministicAndRecomputable) {
  const ScenarioConfig cfg = small_config(21);
  const ScenarioResult a = run_scenario(cfg);
  const ScenarioResult b = run_scenario(cfg);
  ASSERT_EQ(a.settlements.size(), b.settlements.size());
  for (std::size_t i = 0; i < a.settlements.size(); ++i) {
    EXPECT_EQ(a.settlements[i].trace_id, b.settlements[i].trace_id);
    // Recomputable after the fact, without the trace (blame attribution).
    EXPECT_EQ(a.settlements[i].trace_id,
              exchange_trace_id(cfg.seed, 1113254764805ULL,
                                a.settlements[i].cycle,
                                app_direction(cfg.app)));
  }
  EXPECT_EQ(results_fingerprint({a}), results_fingerprint({b}));
}

TEST(WireSettlement, GapIdentitiesHoldWithControlTraffic) {
  const ScenarioResult r = run_scenario(small_config(3));
  const obs::MetricsSnapshot& m = r.metrics;

  // Control traffic actually flowed and was zero-rated.
  EXPECT_GT(m.counter_or_zero("tlc.settle.dl_sent_bytes"), 0u);
  EXPECT_GT(m.counter_or_zero("tlc.settle.ul_delivered_bytes"), 0u);

  // Downlink: charged + stalled + settle-injected = delivered + drops.
  EXPECT_EQ(m.counter_or_zero("epc.gw.charged_dl_bytes") +
                m.counter_or_zero("epc.gw.fault.stalled_dl_bytes") +
                m.counter_or_zero("tlc.settle.dl_sent_bytes"),
            m.counter_or_zero("net.dl.delivered_bytes") +
                drops_for(m, "net.dl"));
  // Uplink: delivered = charged + stalled + settle-delivered.
  EXPECT_EQ(m.counter_or_zero("net.ul.delivered_bytes"),
            m.counter_or_zero("epc.gw.charged_ul_bytes") +
                m.counter_or_zero("epc.gw.fault.stalled_ul_bytes") +
                m.counter_or_zero("tlc.settle.ul_delivered_bytes"));
}

TEST(WireSettlement, DoesNotPerturbAppCycleOutcomes) {
  ScenarioConfig off = small_config(11);
  off.wire_settlement = false;
  ScenarioConfig on = small_config(11);
  const ScenarioResult a = run_scenario(off);
  const ScenarioResult b = run_scenario(on);
  ASSERT_EQ(a.cycles.size(), b.cycles.size());
  for (std::size_t i = 0; i < a.cycles.size(); ++i) {
    EXPECT_EQ(a.cycles[i].truth.sent, b.cycles[i].truth.sent);
    EXPECT_EQ(a.cycles[i].truth.received, b.cycles[i].truth.received);
    EXPECT_EQ(a.cycles[i].legacy, b.cycles[i].legacy);
    EXPECT_EQ(a.cycles[i].optimal.charged, b.cycles[i].optimal.charged);
    EXPECT_EQ(a.cycles[i].random.charged, b.cycles[i].random.charged);
  }
  EXPECT_TRUE(b.settlements.size() == 2u);
  EXPECT_TRUE(a.settlements.empty());
}

TEST(WireSettlement, SettlementPutsMetricsAndSpansInTheTrace) {
  const ScenarioResult r = run_scenario(small_config(5));
  EXPECT_GE(r.metrics.log_histogram_or_zero("tlc.settle.duration_ns").count,
            2u);
  EXPECT_GE(r.metrics.log_histogram_or_zero("tlc.settle.rtt_ns").count, 2u);
  EXPECT_GE(r.metrics.log_histogram_or_zero("tlc.settle.crypto_op_ns").count,
            6u);
  EXPECT_FALSE(r.trace_tail.empty());
  EXPECT_LE(r.trace_tail.size(), 64u);
#if TLC_TRACE_ENABLED
  // The causal tail of the run is the settlement itself: exchange spans
  // tagged with the derived trace id must appear.
  const std::string hex = obs::span_hex(r.settlements.back().trace_id);
  bool tagged = false;
  for (const std::string& line : r.trace_tail) {
    if (line.find(hex) != std::string::npos) tagged = true;
  }
  EXPECT_TRUE(tagged);
#endif
}

TEST(WireSettlement, SurvivesHandoverAndRadioDips) {
  ScenarioConfig cfg = small_config(13);
  cfg.dip_rate_per_s = 0.02;
  cfg.handover_period_s = 7.0;
  const ScenarioResult r = run_scenario(cfg);
  // Outcomes exist for every cycle the deadline allowed; completion is not
  // guaranteed under outages, but accounting must stay exact.
  EXPECT_LE(r.settlements.size(), 2u);
  const obs::MetricsSnapshot& m = r.metrics;
  EXPECT_EQ(m.counter_or_zero("epc.gw.charged_dl_bytes") +
                m.counter_or_zero("epc.gw.fault.stalled_dl_bytes") +
                m.counter_or_zero("tlc.settle.dl_sent_bytes"),
            m.counter_or_zero("net.dl.delivered_bytes") +
                drops_for(m, "net.dl"));
  EXPECT_EQ(m.counter_or_zero("net.ul.delivered_bytes"),
            m.counter_or_zero("epc.gw.charged_ul_bytes") +
                m.counter_or_zero("epc.gw.fault.stalled_ul_bytes") +
                m.counter_or_zero("tlc.settle.ul_delivered_bytes"));
}

}  // namespace
}  // namespace tlc::exp
