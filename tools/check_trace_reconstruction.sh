#!/usr/bin/env sh
# End-to-end check for the trace pipeline: run a wire-settlement scenario
# twice with the same seed, assert the streamed JSONL traces are
# byte-identical, and assert tlc_trace reconstructs 100% of the exchanges
# and produces byte-deterministic analysis output in every mode.
#
# Usage: check_trace_reconstruction.sh <tlc_lab> <tlc_trace>
# (ctest invokes it with the built binaries; defaults assume ./build.)
set -eu

lab="${1:-build/tools/tlc_lab}"
trace_tool="${2:-build/tools/tlc_trace}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT INT TERM

run_lab() {
  "$lab" --app=udp --cycles=2 --cycle-secs=30 --seed=7 --wire \
    --trace="$1" >/dev/null
}

run_lab "$tmp/a.jsonl"
run_lab "$tmp/b.jsonl"
cmp "$tmp/a.jsonl" "$tmp/b.jsonl" || {
  echo "FAIL: identical seeds produced different traces" >&2
  exit 1
}

# Full reconstruction (exits non-zero on any gap). In a TLC_TRACE=OFF
# build the trace has no packet-path spans; --check reports that and
# passes vacuously, which is the correct behaviour for that build.
"$trace_tool" --check "$tmp/a.jsonl"

# Every analysis mode must be byte-deterministic across identical traces.
for mode in "" "--critical-path" "--stalls" "--folded"; do
  # shellcheck disable=SC2086  # $mode is intentionally word-split
  "$trace_tool" $mode "$tmp/a.jsonl" >"$tmp/out_a.txt"
  "$trace_tool" $mode "$tmp/b.jsonl" >"$tmp/out_b.txt"
  cmp "$tmp/out_a.txt" "$tmp/out_b.txt" || {
    echo "FAIL: tlc_trace $mode output is not deterministic" >&2
    exit 1
  }
done

# The timeline mode resolves abbreviated trace ids; smoke it on the first
# exchange when the build traces spans at all.
first_trace="$(sed -n 's/.*"name":"exchange".*"trace":"\([0-9a-f]*\)".*/\1/p;
               s/.*"trace":"\([0-9a-f]*\)".*"name":"exchange".*/\1/p' \
               "$tmp/a.jsonl" | head -n 1)"
if [ -n "$first_trace" ]; then
  "$trace_tool" --timeline="$first_trace" "$tmp/a.jsonl" >/dev/null
fi

echo "OK: trace byte-deterministic; tlc_trace reconstructed all exchanges."
