// An FCC-style public verifier (§5.3.4): accepts Proofs-of-Charging from
// either party and audits them without ever seeing the traffic.
//
// Generates a batch of genuine PoCs plus a set of forged/tampered ones,
// runs Algorithm 2 over all of them, and prints the audit log.
#include <cstdio>

#include "common/format.hpp"
#include "tlc/protocol.hpp"
#include "tlc/verifier.hpp"

using namespace tlc;
using namespace tlc::core;

namespace {

PocMsg negotiate_poc(const charging::DataPlan& plan, std::uint64_t cycle,
                     const crypto::KeyPair& edge_keys,
                     const crypto::KeyPair& operator_keys,
                     std::uint64_t seed) {
  const LocalView view{Bytes{778'500'000 + seed * 1'000'000},
                       Bytes{720'000'000 + seed * 1'000'000}};
  const auto es = make_optimal_edge();
  const auto os = make_optimal_operator();
  ProtocolParty::Config cfg_e;
  cfg_e.role = PartyRole::kEdgeVendor;
  cfg_e.plan = plan;
  cfg_e.cycle = plan.cycle_at(
      kTimeZero + plan.cycle_length * static_cast<std::int64_t>(cycle));
  cfg_e.view = view;
  ProtocolParty::Config cfg_o = cfg_e;
  cfg_o.role = PartyRole::kCellularOperator;
  ProtocolParty edge{cfg_e, *es, edge_keys, operator_keys.public_key(),
                     Rng{seed}};
  ProtocolParty op{cfg_o, *os, operator_keys, edge_keys.public_key(),
                   Rng{seed + 5000}};
  run_exchange(op, edge);
  return *op.poc();
}

}  // namespace

int main() {
  std::printf("=== Public verifier (FCC / court / MVNO) ===\n\n");

  charging::DataPlan plan;
  plan.loss_weight = 0.5;
  plan.cycle_length = std::chrono::hours{1};
  const auto edge_keys =
      crypto::KeyPair::generate(crypto::KeyStrength::kRsa1024);
  const auto operator_keys =
      crypto::KeyPair::generate(crypto::KeyStrength::kRsa1024);
  const auto mallory_keys =
      crypto::KeyPair::generate(crypto::KeyStrength::kRsa1024);

  PublicVerifier verifier{edge_keys.public_key(),
                          operator_keys.public_key(), plan};

  const auto audit = [&verifier](const char* label, const ByteVec& poc) {
    VerifiedCharge out;
    const VerifyResult r = verifier.verify(poc, &out);
    if (r == VerifyResult::kOk) {
      std::printf("  %-38s -> OK: charge %s, cycle %llu, round %d\n", label,
                  format_bytes(out.charged).c_str(),
                  static_cast<unsigned long long>(out.cycle_index),
                  out.round);
    } else {
      std::printf("  %-38s -> REJECTED (%s)\n", label, to_string(r));
    }
  };

  // Genuine receipts from three consecutive billing cycles.
  std::printf("Genuine submissions:\n");
  const PocMsg poc1 = negotiate_poc(plan, 1, edge_keys, operator_keys, 1);
  const PocMsg poc2 = negotiate_poc(plan, 2, edge_keys, operator_keys, 2);
  const PocMsg poc3 = negotiate_poc(plan, 3, edge_keys, operator_keys, 3);
  audit("cycle 1 receipt", poc1.encode());
  audit("cycle 2 receipt", poc2.encode());
  audit("cycle 3 receipt", poc3.encode());

  std::printf("\nAttacks:\n");
  // 1. The operator resubmits an old receipt to double-bill.
  audit("replayed cycle-1 receipt", poc1.encode());

  // 2. The operator rewrites the charge and re-signs with its own key.
  PocMsg inflated = poc2;
  inflated.charged = Bytes{9'000'000'000};
  inflated.sign(operator_keys);
  audit("charge rewritten to 9 GB (re-signed)", inflated.encode());

  // 3. A third party forges a receipt with its own key pair.
  PocMsg forged = poc3;
  forged.sign(mallory_keys);
  audit("receipt forged by outsider", forged.encode());

  // 4. Bit-flip in transit.
  ByteVec corrupted = poc3.encode();
  corrupted[corrupted.size() / 2] ^= 0x40;
  audit("corrupted in transit", corrupted);

  // 5. Receipt negotiated under a different data plan (wrong c).
  charging::DataPlan other_plan = plan;
  other_plan.loss_weight = 1.0;
  PublicVerifier strict{edge_keys.public_key(), operator_keys.public_key(),
                        other_plan};
  VerifiedCharge unused;
  std::printf("  %-38s -> %s\n", "receipt under mismatched plan",
              to_string(strict.verify(poc1.encode(), &unused)));

  std::printf("\nAudit summary: %llu accepted, %llu rejected\n",
              static_cast<unsigned long long>(verifier.accepted()),
              static_cast<unsigned long long>(verifier.rejected()));
  return 0;
}
