// Shared fixture: cached RSA keys (generation dominates test runtime) and
// canonical party configurations for protocol/verifier tests.
#pragma once

#include <gtest/gtest.h>

#include "tlc/protocol.hpp"
#include "tlc/verifier.hpp"

namespace tlc::core::testing {

class ProtocolFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    if (edge_keys_ == nullptr) {
      edge_keys_ =
          new crypto::KeyPair{crypto::KeyPair::generate(
              crypto::KeyStrength::kRsa1024)};
      operator_keys_ =
          new crypto::KeyPair{crypto::KeyPair::generate(
              crypto::KeyStrength::kRsa1024)};
      intruder_keys_ =
          new crypto::KeyPair{crypto::KeyPair::generate(
              crypto::KeyStrength::kRsa1024)};
    }
  }

  static const crypto::KeyPair& edge_keys() { return *edge_keys_; }
  static const crypto::KeyPair& operator_keys() { return *operator_keys_; }
  static const crypto::KeyPair& intruder_keys() { return *intruder_keys_; }

  static charging::DataPlan plan() {
    charging::DataPlan p;
    p.loss_weight = 0.5;
    p.cycle_length = std::chrono::seconds{300};
    return p;
  }

  static charging::ChargingCycle cycle(std::uint64_t index = 3) {
    return plan().cycle_at(kTimeZero +
                           plan().cycle_length * static_cast<std::int64_t>(
                                                     index));
  }

  static ProtocolParty::Config edge_config(LocalView view) {
    ProtocolParty::Config cfg;
    cfg.role = PartyRole::kEdgeVendor;
    cfg.plan = plan();
    cfg.cycle = cycle();
    cfg.direction = charging::Direction::kUplink;
    cfg.view = view;
    return cfg;
  }

  static ProtocolParty::Config operator_config(LocalView view) {
    ProtocolParty::Config cfg = edge_config(view);
    cfg.role = PartyRole::kCellularOperator;
    return cfg;
  }

  /// Observability-wired variants (the parties may share one Obs).
  static ProtocolParty::Config edge_config(LocalView view, obs::Obs* obs) {
    ProtocolParty::Config cfg = edge_config(view);
    cfg.obs = obs;
    return cfg;
  }
  static ProtocolParty::Config operator_config(LocalView view,
                                               obs::Obs* obs) {
    ProtocolParty::Config cfg = operator_config(view);
    cfg.obs = obs;
    return cfg;
  }

  /// Builds a finished, valid PoC (operator-initiated, both optimal).
  static PocMsg make_valid_poc(LocalView edge_view, LocalView op_view,
                               std::uint64_t seed = 11) {
    const auto edge_strategy = make_optimal_edge();
    const auto op_strategy = make_optimal_operator();
    ProtocolParty edge{edge_config(edge_view), *edge_strategy, edge_keys(),
                       operator_keys().public_key(), Rng{seed}};
    ProtocolParty op{operator_config(op_view), *op_strategy, operator_keys(),
                     edge_keys().public_key(), Rng{seed + 1}};
    run_exchange(op, edge);
    EXPECT_EQ(op.state(), ProtocolState::kDone);
    EXPECT_TRUE(op.poc().has_value());
    return *op.poc();
  }

 private:
  static crypto::KeyPair* edge_keys_;
  static crypto::KeyPair* operator_keys_;
  static crypto::KeyPair* intruder_keys_;
};

inline crypto::KeyPair* ProtocolFixture::edge_keys_ = nullptr;
inline crypto::KeyPair* ProtocolFixture::operator_keys_ = nullptr;
inline crypto::KeyPair* ProtocolFixture::intruder_keys_ = nullptr;

}  // namespace tlc::core::testing
