// Simulated links.
//
// CellLink models one direction of the air interface: a QCI priority queue
// drained at the link's *residual* capacity (nominal capacity minus the
// competing background load), with the attached RadioModel deciding, per
// transmission, whether the packet survives the air. During a coverage
// outage the head of the queue stalls — the eNodeB buffering the paper
// observes in Fig. 4 — until the radio returns, the packet ages out, or the
// owner (BaseStation) flushes the queue on detach.
//
// WiredLink models the lossless 1 Gbps Ethernet between the edge server and
// the core: fixed latency, no queueing of interest.
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <string>

#include "net/fault_hook.hpp"
#include "net/queue.hpp"
#include "net/radio.hpp"
#include "obs/obs.hpp"
#include "sim/scheduler.hpp"

namespace tlc::net {

struct LinkStats {
  std::uint64_t delivered_packets = 0;
  Bytes delivered_bytes;
  std::uint64_t dropped_packets = 0;
  Bytes dropped_bytes;
  std::map<DropCause, std::uint64_t> drops_by_cause;
};

class CellLink {
 public:
  struct Config {
    BitRate capacity = BitRate::from_mbps(170.0);
    Bytes buffer_size{1000 * 1000};  // 1 MB eNodeB-style buffer
    Duration propagation_delay = std::chrono::milliseconds{5};
    /// Longest a packet may wait in the buffer (outage survival window).
    Duration max_buffer_wait = std::chrono::seconds{3};
    /// Floor on residual capacity as a fraction of nominal (scheduler never
    /// starves a bearer entirely).
    double residual_floor = 0.02;
    /// Per-transmission loss probability from air-interface contention
    /// under heavy cell load (the paper's iperf background ran to a
    /// *separate* phone, so it congests the air, not this bearer's queue).
    /// Priority bearers (QCI < 9) are exempt — guaranteed scheduling.
    double congestion_loss = 0.0;
  };

  using DeliverFn = std::function<void(const Packet&, TimePoint)>;
  using DropFn = std::function<void(const Packet&, DropCause, TimePoint)>;

  /// `radio` may be null for a radio-less (wired-like) hop.
  CellLink(sim::Scheduler& sched, Config config, RadioModel* radio,
           DeliverFn deliver, DropFn drop);

  CellLink(const CellLink&) = delete;
  CellLink& operator=(const CellLink&) = delete;

  /// Admits a packet to the queue; may synchronously report congestion
  /// drops (evictions or rejection) through the drop callback.
  void enqueue(Packet packet);

  /// Competing traffic sharing this direction of the cell; reduces the
  /// residual service rate available to this queue.
  void set_background_load(BitRate load);
  [[nodiscard]] BitRate background_load() const { return background_; }

  /// Updates the load-dependent air-contention loss probability.
  void set_congestion_loss(double probability) {
    config_.congestion_loss = probability;
  }
  [[nodiscard]] double congestion_loss() const {
    return config_.congestion_loss;
  }

  /// Gate used by the BaseStation: while blocked (device detached) every
  /// arriving packet is dropped with the given cause.
  void set_blocked(bool blocked, DropCause cause = DropCause::kDetached);
  [[nodiscard]] bool blocked() const { return blocked_; }

  /// Drops everything currently queued (detach flush).
  void flush(DropCause cause);

  /// Service rate available to a packet of the given class. Background
  /// load rides the best-effort bearer (QCI 9), so higher-priority classes
  /// preempt it and see the full capacity — the reason the paper's QCI 7
  /// gaming bearer stays nearly gap-free under congestion (Fig. 12d).
  [[nodiscard]] BitRate residual_capacity(Qci qci = Qci::kQci9) const;
  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] Bytes queued_bytes() const { return queue_.used(); }

  /// Attach a metrics/trace domain under `prefix` (e.g. "net.dl"):
  /// counters <prefix>.delivered_{packets,bytes}, per-cause
  /// <prefix>.drop.<cause>_{packets,bytes}, gauge <prefix>.queue_depth,
  /// log histogram <prefix>.queue_wait_ns; trace component <prefix>
  /// ("drop" at info, "deliver" at debug). Traced packets (trace_id != 0)
  /// additionally get "queue" and "transit" spans with deterministic
  /// derived span IDs. Links of parallel cells may share a prefix — their
  /// counters aggregate.
  void set_observability(obs::Obs* obs, std::string prefix);

  /// Attach (or detach with nullptr) a fault-injection hook consulted for
  /// every packet that survived the air. Injected drops are accounted as
  /// DropCause::kFaultInjected; duplicate copies are counted under
  /// <prefix>.fault.duplicated_{packets,bytes} and are NOT added to
  /// delivered_* (the identity charged − delivered = Σ drops must keep
  /// holding with faults active). The hook must outlive the link or be
  /// detached first.
  void set_fault_hook(LinkFaultHook* hook) { fault_hook_ = hook; }
  [[nodiscard]] LinkFaultHook* fault_hook() const { return fault_hook_; }

 private:
  void maybe_start_service();
  /// Arms a single service_head() wakeup after `delay`. All service wakeups
  /// (start-of-service, post-timeout, stall probe, post-transmission) funnel
  /// through here; `service_pending_` guarantees a burst of arrivals or
  /// drops arms one probe, not one per packet.
  void schedule_service(Duration delay);
  void service_head();
  void complete_transmission(QciQueue::Entry entry, TimePoint started);
  void report_drop(const Packet& packet, DropCause cause);
  void note_queue_gauges();
  /// Emits a completed [begin, end] span for a traced packet's queue
  /// residency or link transit, with a derived (stateless) span ID.
  void emit_packet_span(const Packet& packet, std::string_view name,
                        std::uint64_t salt, TimePoint begin, TimePoint end,
                        std::vector<obs::TraceField> end_fields);

  sim::Scheduler& sched_;
  Config config_;
  RadioModel* radio_;
  DeliverFn deliver_;
  DropFn drop_;
  QciQueue queue_;
  BitRate background_;
  bool busy_ = false;
  bool service_pending_ = false;  // a service_head() wakeup is scheduled
  bool blocked_ = false;
  DropCause blocked_cause_ = DropCause::kDetached;
  LinkFaultHook* fault_hook_ = nullptr;
  LinkStats stats_;

  obs::Obs* obs_ = nullptr;
  std::string component_;
  obs::Counter* m_delivered_packets_ = nullptr;
  obs::Counter* m_delivered_bytes_ = nullptr;
  std::array<obs::Counter*, kDropCauseCount> m_drop_packets_{};
  std::array<obs::Counter*, kDropCauseCount> m_drop_bytes_{};
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Gauge* m_queued_bytes_ = nullptr;
  obs::Counter* m_fault_dup_packets_ = nullptr;
  obs::Counter* m_fault_dup_bytes_ = nullptr;
  obs::LogHistogram* m_queue_wait_ = nullptr;
  /// FNV-1a of the component prefix: salts derived span IDs so a packet
  /// crossing several instrumented links gets distinct spans per hop.
  std::uint64_t comp_salt_ = 0;
};

class WiredLink {
 public:
  struct Config {
    BitRate capacity = BitRate::from_mbps(1000.0);
    Duration latency = std::chrono::microseconds{200};
  };

  WiredLink(sim::Scheduler& sched, Config config, CellLink::DeliverFn deliver);

  void enqueue(Packet packet);

  [[nodiscard]] const LinkStats& stats() const { return stats_; }

  /// Counters <prefix>.delivered_{packets,bytes} (wired links never drop).
  void set_observability(obs::Obs* obs, std::string_view prefix);

 private:
  sim::Scheduler& sched_;
  Config config_;
  CellLink::DeliverFn deliver_;
  TimePoint pipe_free_at_ = kTimeZero;
  LinkStats stats_;
  obs::Obs* obs_ = nullptr;
  std::string component_;
  std::uint64_t comp_salt_ = 0;
  obs::Counter* m_delivered_packets_ = nullptr;
  obs::Counter* m_delivered_bytes_ = nullptr;
};

}  // namespace tlc::net
