// The chaos driver's contract: deterministic for a fixed seed (regardless
// of worker count), zero violations on a healthy tree, and full attack
// coverage in every plan that enables wire attacks.
#include "fault/chaos.hpp"

#include <gtest/gtest.h>

namespace tlc::fault {
namespace {

ChaosOptions small(int jobs) {
  ChaosOptions o;
  o.plans = 6;
  o.jobs = jobs;
  o.seed = 404;
  return o;
}

TEST(Chaos, HealthyTreeReportsZeroViolations) {
  const ChaosReport report = run_chaos(small(2));
  ASSERT_EQ(report.outcomes.size(), 6u);
  for (const Violation& v : report.violations) ADD_FAILURE() << v.to_json();
}

TEST(Chaos, ReportIsDeterministicAcrossRunsAndJobCounts) {
  const ChaosReport serial = run_chaos(small(1));
  const ChaosReport parallel = run_chaos(small(3));
  EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
  EXPECT_EQ(serial.to_json(), parallel.to_json());

  const ChaosReport again = run_chaos(small(1));
  EXPECT_EQ(serial.fingerprint(), again.fingerprint());
}

TEST(Chaos, EveryPlanRunsTheFullAttackSuite) {
  const ChaosReport report = run_chaos(small(2));
  for (const PlanOutcome& o : report.outcomes) {
    EXPECT_EQ(o.attacks.size(), 9u) << "plan " << o.plan.id;
    for (const AttackOutcome& a : o.attacks) {
      EXPECT_TRUE(a.rejected)
          << "plan " << o.plan.id << " attack " << a.attack << ": "
          << a.detail;
    }
    EXPECT_EQ(o.result_digest.size(), 64u);  // hex SHA-256
  }
}

TEST(Chaos, DisablingAttacksChangesOnlyCoverage) {
  ChaosOptions o = small(1);
  o.wire_attacks = false;
  const ChaosReport report = run_chaos(o);
  ASSERT_EQ(report.outcomes.size(), 6u);
  for (const PlanOutcome& out : report.outcomes) {
    EXPECT_TRUE(out.attacks.empty());
  }
  EXPECT_TRUE(report.violations.empty());
}

TEST(Chaos, HealthyPlansCarryNoForensics) {
  // Metrics snapshots and trace tails ride along ONLY for violating
  // plans, so a clean sweep's report bytes never depend on the trace
  // build or ring contents.
  const ChaosReport report = run_chaos(small(2));
  ASSERT_TRUE(report.violations.empty());
  for (const PlanOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.metrics_json.empty()) << "plan " << o.plan.id;
    EXPECT_TRUE(o.trace_tail.empty()) << "plan " << o.plan.id;
  }
  EXPECT_EQ(report.to_json().find("\"metrics\""), std::string::npos);
  EXPECT_EQ(report.to_json().find("\"trace_tail\""), std::string::npos);
}

TEST(Chaos, ViolatingPlanEmbedsForensicsInTheReport) {
  // Hand-build a report with one violating plan: the JSON must embed its
  // metrics snapshot and causal trace tail next to the blame trace id.
  ChaosReport report;
  PlanOutcome bad;
  bad.plan = FaultPlan{};
  bad.result_digest = std::string(64, 'a');
  bad.metrics_json = "{\"counters\":{\"x\":1}}";
  bad.trace_tail = {"{\"t_ns\":1,\"seq\":0,\"level\":\"info\","
                    "\"component\":\"tlc.settle\",\"event\":\"span_begin\"}"};
  report.outcomes.push_back(bad);
  report.violations.push_back(
      Violation{0, "t4-rounds", "cycle 1: rounds=2", "00ff00ff00ff00ff"});
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"metrics\":{\"counters\":{\"x\":1}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"trace_tail\":[{\"t_ns\":1,"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":\"00ff00ff00ff00ff\""), std::string::npos);
}

TEST(Chaos, DifferentSeedsProduceDifferentFleets) {
  ChaosOptions a = small(1);
  ChaosOptions b = small(1);
  b.seed = 405;
  EXPECT_NE(run_chaos(a).fingerprint(), run_chaos(b).fingerprint());
}

}  // namespace
}  // namespace tlc::fault
